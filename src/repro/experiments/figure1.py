"""Experiment E-F1: Figure 1 — stride sensitivity of the indexing schemes.

The paper drives four otherwise-identical 8 KB, 32-byte-block, two-way caches
with "repeated accesses to a vector of 64 8-byte elements in which the
elements were separated by stride S", for every stride in ``1 <= S < 4096``,
and plots the frequency distribution of the resulting miss ratios per
indexing scheme.  The headline observations are:

* most strides behave well under every scheme;
* the conventional (``a2``) and skewed-XOR (``a2-Hx-Sk``) schemes are
  pathological (miss ratio > 50%) on more than 6% of strides;
* the skewed I-Poly scheme (``a2-Hp-Sk``) has no pathological strides at all.

:func:`run_figure1` reproduces the sweep and returns one
:class:`~repro.analysis.histograms.MissRatioHistogram` per scheme plus the
pathological-stride fractions.

The sweep runs on either simulation engine: ``engine="reference"`` replays
:class:`~repro.trace.record.MemoryAccess` objects through the scalar cache
model, ``engine="vectorized"`` synthesises the strided addresses directly as
NumPy arrays and drives the batch engine
(:class:`~repro.engine.batch_cache.BatchSetAssociativeCache`) — bit-exact,
an order of magnitude faster, and therefore the path of choice for the full
4096-stride sweep.  ``workers`` additionally fans the (scheme, stride) grid
across a process pool via :func:`repro.engine.sweep.run_sweep`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.histograms import MissRatioHistogram
from ..core.index import make_index_function
from ..engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    AddressBatch,
    BatchSetAssociativeCache,
    MultiConfigPlan,
    TaskFailure,
    check_engine,
    check_profile_mode,
    chunk_tasks,
    run_sweep,
)
from ..trace.batching import cached_strided_arrays
from ..trace.generators import strided_vector
from .config import INDEX_SCHEMES, PAPER_L1_8KB, CacheGeometry, build_cache
from .trace_input import stream_trace

__all__ = ["Figure1Result", "stride_miss_ratio", "run_figure1"]


@dataclass
class Figure1Result:
    """Outcome of the Figure 1 sweep."""

    geometry: CacheGeometry
    strides: int
    histograms: Dict[str, MissRatioHistogram] = field(default_factory=dict)
    miss_ratios: Dict[str, List[float]] = field(default_factory=dict)
    #: Dispatches that exhausted their retries under ``on_error="collect"``;
    #: their strides carry ``nan`` ratios and are absent from the histograms.
    failures: List[TaskFailure] = field(default_factory=list)

    def pathological_fraction(self, scheme: str, threshold: float = 0.5) -> float:
        """Fraction of strides whose miss ratio exceeds ``threshold``."""
        return self.histograms[scheme].fraction_above(threshold)

    def summary(self, threshold: float = 0.5) -> Dict[str, float]:
        """Pathological-stride fraction per scheme."""
        return {scheme: self.pathological_fraction(scheme, threshold)
                for scheme in self.histograms}

    def render(self) -> str:
        """Human-readable rendering of all histograms plus the summary."""
        parts = [h.render() for h in self.histograms.values()]
        parts.append("pathological strides (miss ratio > 50%):")
        for scheme, fraction in self.summary().items():
            parts.append(f"  {scheme:10s} {100 * fraction:6.2f}%")
        return "\n\n".join(parts)


def stride_miss_ratio(scheme: str, stride: int,
                      geometry: CacheGeometry = PAPER_L1_8KB,
                      elements: int = 64, element_size: int = 8,
                      sweeps: int = 8, address_bits: int = 19,
                      engine: str = ENGINE_REFERENCE,
                      replacement: Optional[str] = None,
                      profile: str = "auto",
                      sample_rate: float = 0.01,
                      sample_size: Optional[int] = None,
                      profile_seed: int = 0) -> float:
    """Miss ratio of one (scheme, stride) pair under the Figure 1 workload.

    ``sweeps`` controls how many times the vector is traversed; the first
    sweep's compulsory misses are amortised over the rest, as in the paper's
    "repeated accesses".  ``engine`` picks the scalar reference model or the
    bit-exact batch engine; ``replacement`` the replacement policy (``None``
    means the paper's LRU).  On the vectorized engine the task is routed
    through a :class:`~repro.engine.multiconfig.MultiConfigPlan`; ``profile``
    selects its policy (a single-configuration task only leaves its kernel
    under ``profile="always"`` — bit-exact either way).
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    engine = check_engine(engine)
    profile = check_profile_mode(profile)
    if engine == ENGINE_VECTORIZED:
        # Cached per (stride, shape): each sweep worker materialises a given
        # stride's trace once even though every scheme revisits it.
        addresses, writes = cached_strided_arrays(
            stride, elements=elements, element_size=element_size, sweeps=sweeps)
        batch = AddressBatch.from_arrays(addresses, writes)

        def factory() -> BatchSetAssociativeCache:
            index_fn = make_index_function(scheme, num_sets=geometry.num_sets,
                                           ways=geometry.ways,
                                           address_bits=address_bits)
            return BatchSetAssociativeCache(
                size_bytes=geometry.size_bytes, block_size=geometry.block_size,
                ways=geometry.ways, index_function=index_fn,
                replacement=replacement)

        plan = MultiConfigPlan(profile=profile, sample_rate=sample_rate,
                               sample_size=sample_size,
                               profile_seed=profile_seed)
        plan.add("row", batch, factory)
        return plan.run()["row"].miss_ratio
    cache = build_cache(geometry, scheme, address_bits=address_bits,
                        replacement=replacement)
    for access in strided_vector(stride, elements=elements,
                                 element_size=element_size, sweeps=sweeps):
        cache.access(access.address, access.is_write)
    return cache.stats.miss_ratio


#: One (scheme, stride) work item of the sweep, with everything a worker
#: process needs to rebuild the simulation.  The trailing triple is the
#: sampled-profiling configuration ``(sample_rate, sample_size, seed)``.
_SweepTask = Tuple[str, int, CacheGeometry, int, int, int, str, Optional[str],
                   str, Tuple[float, Optional[int], int]]


def _stride_task(task: _SweepTask) -> float:
    """Module-level sweep worker (must be picklable for process pools)."""
    (scheme, stride, geometry, elements, sweeps, address_bits, engine,
     replacement, profile, sampling) = task
    sample_rate, sample_size, profile_seed = sampling
    return stride_miss_ratio(scheme, stride, geometry=geometry,
                             elements=elements, sweeps=sweeps,
                             address_bits=address_bits, engine=engine,
                             replacement=replacement, profile=profile,
                             sample_rate=sample_rate, sample_size=sample_size,
                             profile_seed=profile_seed)


def _stride_chunk_task(chunk: List[_SweepTask]) -> List[float]:
    """Chunk-level sweep worker: one dispatch simulates a run of strides.

    The Figure 1 grid is thousands of tiny tasks; dispatching them one at a
    time across a process pool is dominated by pickling/IPC overhead (the
    ROADMAP's "spawn-cost-bound" item).  Chunks amortise that cost while
    preserving result order.
    """
    return [_stride_task(task) for task in chunk]


def run_figure1(max_stride: int = 4096,
                schemes: Optional[Sequence[str]] = None,
                geometry: CacheGeometry = PAPER_L1_8KB,
                elements: int = 64, sweeps: int = 8,
                stride_step: int = 1,
                engine: str = ENGINE_REFERENCE,
                workers: Optional[int] = None,
                chunksize: Optional[int] = None,
                address_bits: int = 19,
                replacement: Optional[str] = None,
                profile: str = "auto",
                sample_rate: float = 0.01,
                sample_size: Optional[int] = None,
                profile_seed: int = 0,
                timeout: Optional[float] = None,
                retries: int = 0,
                on_error: str = "raise",
                resume: Optional[str] = None,
                trace: Optional[str] = None,
                trace_chunk: int = 1 << 20) -> Figure1Result:
    """Run the Figure 1 stride sweep.

    Parameters
    ----------
    max_stride:
        Upper bound of the stride range (exclusive); the paper uses 4096.
    schemes:
        Index schemes to evaluate (defaults to the four of Figure 1).
    stride_step:
        Evaluate every ``stride_step``-th stride — useful to subsample the
        sweep in quick runs while keeping full coverage in the benchmark.
    engine:
        ``"reference"`` (scalar models) or ``"vectorized"`` (batch engine;
        bit-exact, much faster).
    workers:
        Fan the (scheme, stride) grid across this many worker processes;
        ``None`` or 1 runs serially.
    chunksize:
        Strides simulated per worker dispatch.  Tasks are chunked *within*
        each scheme (a chunk never spans schemes), so one dispatch carries a
        contiguous run of strides instead of a single tiny task.  ``None``
        picks roughly four chunks per worker per scheme.
    replacement:
        Replacement policy name for every cache of the sweep (``None`` means
        the paper's LRU).
    profile:
        Multi-configuration profiling policy on the vectorized engine
        (``auto``/``always``/``never``/``sampled`` — see
        :class:`~repro.engine.multiconfig.MultiConfigPlan`); every stride is
        its own trace, so only ``"always"`` (or ``"sampled"``) moves the
        conventional LRU rows onto the one-pass profiler.
    sample_rate, sample_size, profile_seed:
        SHARDS sampled-profiling knobs, used only under
        ``profile="sampled"`` (see :mod:`repro.engine.shards`): the spatial
        sampling rate in (0, 1], an optional cap on the expected number of
        sampled blocks, and the hash seed.
    timeout, retries, on_error, resume:
        Fault-tolerance knobs forwarded to
        :func:`repro.engine.sweep.run_sweep`.  The dispatched work item is a
        chunk of up to ``chunksize`` strides, so ``timeout`` bounds one such
        chunk.  Under ``on_error="collect"`` a failed chunk lands in
        ``result.failures`` and its strides read as ``nan``.  ``resume``
        names a sweep journal that is both appended to and resumed from.
    trace, trace_chunk:
        ``trace`` replaces the synthetic strided workload with one recorded
        on-disk trace (any :mod:`repro.trace.stream` format): each scheme's
        cache replays that single trace instead of the stride grid, so the
        result carries one miss ratio (and a one-sample histogram) per
        scheme.  On the vectorized engine the trace streams through all
        schemes in ``trace_chunk``-access batches.
    """
    engine = check_engine(engine)
    profile = check_profile_mode(profile)
    schemes = list(schemes) if schemes is not None else list(INDEX_SCHEMES)
    if trace is not None:
        caches = {}
        for scheme in schemes:
            if engine == ENGINE_VECTORIZED:
                index_fn = make_index_function(
                    scheme, num_sets=geometry.num_sets, ways=geometry.ways,
                    address_bits=address_bits)
                caches[scheme] = BatchSetAssociativeCache(
                    size_bytes=geometry.size_bytes,
                    block_size=geometry.block_size, ways=geometry.ways,
                    index_function=index_fn, replacement=replacement)
            else:
                caches[scheme] = build_cache(geometry, scheme,
                                             address_bits=address_bits,
                                             replacement=replacement)
        stream_trace(caches, trace, engine, trace_chunk)
        result = Figure1Result(geometry=geometry, strides=1)
        for scheme, cache in caches.items():
            ratio = cache.stats.miss_ratio
            histogram = MissRatioHistogram(label=scheme)
            histogram.add(ratio)
            result.histograms[scheme] = histogram
            result.miss_ratios[scheme] = [ratio]
        return result
    if max_stride < 2:
        raise ValueError("max_stride must be at least 2")
    if stride_step < 1:
        raise ValueError("stride_step must be positive")
    if chunksize is not None and chunksize < 1:
        raise ValueError("chunksize must be positive")

    strides = range(1, max_stride, stride_step)
    result = Figure1Result(geometry=geometry, strides=len(strides))
    if chunksize is None:
        per_worker = max(1, (workers or 1) * 4)
        chunksize = max(1, len(strides) // per_worker)
    chunks: List[List[_SweepTask]] = []
    for scheme in schemes:
        scheme_tasks: List[_SweepTask] = [
            (scheme, stride, geometry, elements, sweeps, address_bits,
             engine, replacement, profile,
             (sample_rate, sample_size, profile_seed))
            for stride in strides
        ]
        chunks.extend(chunk_tasks(scheme_tasks, chunksize))
    chunked_ratios = run_sweep(_stride_chunk_task, chunks, workers=workers,
                               chunksize=1, timeout=timeout, retries=retries,
                               on_error=on_error, journal=resume,
                               resume=resume)
    ratios_flat: List[float] = []
    for chunk, outcome in zip(chunks, chunked_ratios):
        if isinstance(outcome, TaskFailure):
            result.failures.append(outcome)
            ratios_flat.extend([float("nan")] * len(chunk))
        else:
            ratios_flat.extend(outcome)
    per_scheme = len(strides)
    for position, scheme in enumerate(schemes):
        histogram = MissRatioHistogram(label=scheme)
        ratios = ratios_flat[position * per_scheme:(position + 1) * per_scheme]
        for ratio in ratios:
            if not math.isnan(ratio):
                histogram.add(ratio)
        result.histograms[scheme] = histogram
        result.miss_ratios[scheme] = list(ratios)
    return result
