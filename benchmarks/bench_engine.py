"""E-ENG: scalar-reference versus vectorized-engine throughput.

Drives the same 1M-access strided trace through the scalar
:class:`~repro.cache.set_assoc.SetAssociativeCache` and through the batch
engine for each of the paper's four index-function families, reporting
accesses/second for both paths.  Besides tracking the speedup (the engine
must stay >= 10x on every family), each benchmark asserts *bit-exact*
:class:`~repro.cache.stats.CacheStats` agreement, so the performance claim
can never drift away from correctness.

Runs under pytest-benchmark::

    pytest benchmarks/bench_engine.py --benchmark-only

or standalone, printing a comparison table and writing a machine-readable
``BENCH_engine.json`` artifact (rows per scheme, plus informational rows for
the non-LRU replacement kernels and the victim-cache kernel) so the
performance trajectory can be tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_engine.py

``REPRO_BENCH_ENGINE_ACCESSES`` overrides the trace length (default 1M);
``REPRO_BENCH_ENGINE_JSON`` overrides the artifact path (empty disables it).
The >= 10x speedup bound applies to the LRU batch paths; the policy/victim
kernel rows are tracked but not bounded.
"""

import json
import os
import platform
import time

import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.victim import VictimCache
from repro.core.index import make_index_function
from repro.engine import AddressBatch, BatchSetAssociativeCache, BatchVictimCache
from repro.experiments.config import PAPER_HASH_BITS, PAPER_L1_8KB
from repro.trace.batching import strided_vector_arrays

#: The four families of Figure 1 / Table 2.
SCHEMES = ["a2", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"]

#: Strided workload shape: 512 elements spaced 67 elements apart sweeps a
#: footprint comparable to the 8 KB cache, so every family sees a mix of
#: hits, conflict misses and evictions rather than a degenerate all-hit loop.
ELEMENTS = 512
STRIDE = 67

#: Minimum vectorized-over-scalar throughput ratio the engine must sustain.
REQUIRED_SPEEDUP = 10.0

#: Below this trace length the constant batch-setup overhead dominates and
#: wall-clock ratios are noise, so the speedup assertion is skipped (the
#: bit-exactness assertion always runs).
MIN_ACCESSES_FOR_SPEEDUP_CHECK = 200_000


def _env_int(name, default):
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_ENGINE_ACCESSES = _env_int("REPRO_BENCH_ENGINE_ACCESSES", 1_000_000)

#: Path of the machine-readable artifact ``main()`` writes (empty disables).
BENCH_ENGINE_JSON = os.environ.get("REPRO_BENCH_ENGINE_JSON",
                                   "BENCH_engine.json")

#: Non-LRU replacement policies tracked (informational — no speedup bound).
POLICY_ROWS = ["fifo", "random", "plru"]


def _build_trace(accesses):
    sweeps = max(1, accesses // ELEMENTS)
    addresses, writes = strided_vector_arrays(STRIDE, elements=ELEMENTS,
                                              sweeps=sweeps)
    return AddressBatch.from_arrays(addresses, writes)


def _make_caches(scheme, replacement=None):
    geometry = PAPER_L1_8KB

    def index_fn():
        return make_index_function(scheme, num_sets=geometry.num_sets,
                                   ways=geometry.ways,
                                   address_bits=PAPER_HASH_BITS)

    scalar = SetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                 geometry.ways, index_function=index_fn(),
                                 replacement=replacement)
    batch = BatchSetAssociativeCache(geometry.size_bytes, geometry.block_size,
                                     geometry.ways, index_function=index_fn(),
                                     replacement=replacement)
    return scalar, batch


def _stats_tuple(stats):
    return (stats.loads, stats.stores, stats.load_misses, stats.store_misses,
            stats.evictions, stats.writebacks, tuple(sorted(stats.miss_kinds.items())))


def _run_scalar(scalar, batch_trace):
    access = scalar.access
    for address in batch_trace.addresses.tolist():
        access(address, False)


def compare_engines(scheme, accesses=BENCH_ENGINE_ACCESSES, replacement=None):
    """Time both engines on the same trace; returns a result dict."""
    trace = _build_trace(accesses)
    scalar, batch = _make_caches(scheme, replacement=replacement)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert _stats_tuple(scalar.stats) == _stats_tuple(batch.stats), (
        f"CacheStats diverged between engines for {scheme}")
    n = len(trace)
    return {
        "scheme": scheme,
        "replacement": replacement or "lru",
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def compare_victim_kernel(accesses=BENCH_ENGINE_ACCESSES):
    """Time the scalar victim cache against the BatchVictimCache kernel."""
    trace = _build_trace(accesses)
    geometry = PAPER_L1_8KB
    scalar = VictimCache(geometry.size_bytes, geometry.block_size,
                         ways=1, victim_entries=8)
    batch = BatchVictimCache(geometry.size_bytes, geometry.block_size,
                             ways=1, victim_entries=8)

    start = time.perf_counter()
    access = scalar.access
    for address in trace.addresses.tolist():
        access(address, False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch.run(trace)
    vector_seconds = time.perf_counter() - start

    assert scalar.stats.load_misses == batch.stats.load_misses, (
        "victim-cache kernels diverged")
    assert scalar.victim_hits == batch.victim_hits
    n = len(trace)
    return {
        "scheme": "victim-direct+8",
        "replacement": "lru",
        "accesses": n,
        "scalar_aps": n / scalar_seconds,
        "vector_aps": n / vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "miss_ratio": scalar.stats.miss_ratio,
    }


def _write_artifact(rows, path=BENCH_ENGINE_JSON):
    """Write the machine-readable benchmark artifact consumed across PRs."""
    if not path:
        return None
    artifact = {
        "benchmark": "bench_engine",
        "workload": {"elements": ELEMENTS, "stride": STRIDE,
                     "accesses": BENCH_ENGINE_ACCESSES,
                     "cache": PAPER_L1_8KB.label},
        "required_speedup_lru": REQUIRED_SPEEDUP,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_engine_throughput(benchmark, scheme):
    trace = _build_trace(BENCH_ENGINE_ACCESSES)
    scalar, batch = _make_caches(scheme)

    start = time.perf_counter()
    _run_scalar(scalar, trace)
    scalar_seconds = time.perf_counter() - start

    def _vector_run():
        _, fresh = _make_caches(scheme)
        fresh.run(trace)
        return fresh

    fresh = benchmark.pedantic(_vector_run, rounds=3, iterations=1)
    vector_seconds = benchmark.stats.stats.min

    assert _stats_tuple(scalar.stats) == _stats_tuple(fresh.stats), (
        f"CacheStats diverged between engines for {scheme}")
    speedup = scalar_seconds / vector_seconds
    print(f"\n{scheme}: scalar {len(trace) / scalar_seconds:,.0f} acc/s, "
          f"vectorized {len(trace) / vector_seconds:,.0f} acc/s "
          f"({speedup:.1f}x)")
    if len(trace) >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{scheme}: vectorized engine only {speedup:.1f}x over scalar "
            f"(required {REQUIRED_SPEEDUP}x)")


def main():
    print(f"strided trace: {ELEMENTS} elements, stride {STRIDE}, "
          f"{BENCH_ENGINE_ACCESSES:,} accesses, "
          f"{PAPER_L1_8KB.label} cache\n")
    header = (f"{'scheme':16s} {'repl':6s} {'scalar acc/s':>14s} "
              f"{'vector acc/s':>14s} {'speedup':>8s} {'miss%':>7s}")
    print(header)
    print("-" * len(header))

    def show(row):
        print(f"{row['scheme']:16s} {row['replacement']:6s} "
              f"{row['scalar_aps']:14,.0f} "
              f"{row['vector_aps']:14,.0f} {row['speedup']:7.1f}x "
              f"{100 * row['miss_ratio']:6.2f}%")

    rows = []
    for scheme in SCHEMES:
        row = compare_engines(scheme)
        rows.append(row)
        show(row)
        if row["accesses"] >= MIN_ACCESSES_FOR_SPEEDUP_CHECK:
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{row['scheme']}: only {row['speedup']:.1f}x")
    # Informational rows: non-LRU policy kernels and the victim kernel are
    # tracked in the artifact but carry no speedup bound.
    for policy in POLICY_ROWS:
        row = compare_engines("a2-Hp-Sk", replacement=policy)
        rows.append(row)
        show(row)
    row = compare_victim_kernel()
    rows.append(row)
    show(row)
    print(f"\nall LRU schemes >= {REQUIRED_SPEEDUP:.0f}x with bit-exact "
          f"CacheStats")
    path = _write_artifact(rows)
    if path:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
