"""Paging: page tables, page-size policy and a simple TLB.

Section 3.1 of the paper is entirely about the interaction between cache
indexing and virtual memory: the I-Poly hash wants to see address bits above
the minimum page size, which a conventional virtually-indexed,
physically-tagged L1 cannot provide.  To study the alternatives we need a
small but real paging substrate:

* :class:`PageTable` — demand-allocated virtual-to-physical page mapping with
  configurable page size.  The default allocation policy hands out physical
  frames in a pseudo-random (but deterministic) order, modelling the fact
  that consecutive virtual pages rarely get consecutive physical frames; a
  sequential policy is available for experiments that want the identity-like
  behaviour of large contiguous segments.
* :class:`TLB` — a small set-associative translation buffer with its own hit
  and miss statistics, used by the processor model when address translation
  happens before indexing (Section 3.1, option 1).
* :class:`PageSizePolicy` — the bookkeeping needed for option 2: track the
  page size of each segment and report whether every active segment is large
  enough to enable I-Poly indexing at L1.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from .address import log2_exact, page_number, page_offset

__all__ = ["PageTable", "TLB", "Segment", "PageSizePolicy"]


class PageTable:
    """Demand-paged virtual to physical mapping.

    Parameters
    ----------
    page_size:
        Page size in bytes (power of two).
    allocation:
        ``"scatter"`` (default) allocates physical frames in a deterministic
        pseudo-random order; ``"sequential"`` allocates them in increasing
        order.  Scatter is the realistic case and the one that makes the L2's
        physical index uncorrelated with the L1's virtual index.
    seed:
        Seed for the scatter order (deterministic run-to-run).
    """

    def __init__(self, page_size: int = 4096, allocation: str = "scatter",
                 seed: int = 0xC0FFEE) -> None:
        log2_exact(page_size, "page_size")
        if allocation not in ("scatter", "sequential"):
            raise ValueError("allocation must be 'scatter' or 'sequential'")
        self._page_size = page_size
        self._allocation = allocation
        self._mapping: Dict[int, int] = {}
        self._next_frame = 0
        self._state = seed & 0xFFFFFFFFFFFFFFFF or 0xC0FFEE
        self.page_faults = 0

    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return self._page_size

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages currently mapped."""
        return len(self._mapping)

    def _next_scatter(self) -> int:
        # SplitMix64 step: uniform, deterministic, and cheap.
        self._state = (self._state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)

    def _allocate_frame(self) -> int:
        if self._allocation == "sequential":
            frame = self._next_frame
            self._next_frame += 1
            return frame
        used = set(self._mapping.values())
        while True:
            frame = self._next_scatter() & 0xFFFFF  # 2^20 frames = 4 GB of 4K pages
            if frame not in used:
                return frame

    def frame_of(self, virtual_page: int) -> int:
        """Return (allocating on demand) the physical frame of ``virtual_page``."""
        if virtual_page < 0:
            raise ValueError("virtual_page must be non-negative")
        frame = self._mapping.get(virtual_page)
        if frame is None:
            frame = self._allocate_frame()
            self._mapping[virtual_page] = frame
            self.page_faults += 1
        return frame

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual byte address to a physical byte address."""
        vpn = page_number(virtual_address, self._page_size)
        offset = page_offset(virtual_address, self._page_size)
        return (self.frame_of(vpn) * self._page_size) + offset

    def is_mapped(self, virtual_address: int) -> bool:
        """True if the page containing ``virtual_address`` has been touched before."""
        return page_number(virtual_address, self._page_size) in self._mapping


class TLB:
    """A small fully-associative (LRU) translation look-aside buffer."""

    def __init__(self, entries: int = 64, page_size: int = 4096) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        log2_exact(page_size, "page_size")
        self._entries = entries
        self._page_size = page_size
        self._table: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def entries(self) -> int:
        """Capacity of the TLB."""
        return self._entries

    @property
    def hit_ratio(self) -> float:
        """TLB hit ratio."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, virtual_address: int) -> Optional[int]:
        """Return the cached frame number for the page, updating LRU state."""
        vpn = page_number(virtual_address, self._page_size)
        frame = self._table.get(vpn)
        if frame is not None:
            self._table.move_to_end(vpn)
            self.hits += 1
            return frame
        self.misses += 1
        return None

    def insert(self, virtual_address: int, frame: int) -> None:
        """Install a translation (evicting the LRU entry when full)."""
        vpn = page_number(virtual_address, self._page_size)
        self._table[vpn] = frame
        self._table.move_to_end(vpn)
        while len(self._table) > self._entries:
            self._table.popitem(last=False)

    def flush(self) -> None:
        """Drop all translations (context switch)."""
        self._table.clear()


@dataclass
class Segment:
    """A contiguous virtual region with a single page size (for option 2)."""

    base: int
    length: int
    page_size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.length <= 0:
            raise ValueError("segment base must be >= 0 and length > 0")
        log2_exact(self.page_size, "page_size")

    def contains(self, virtual_address: int) -> bool:
        """True when ``virtual_address`` falls inside this segment."""
        return self.base <= virtual_address < self.base + self.length


class PageSizePolicy:
    """Tracks per-segment page sizes and decides when I-Poly indexing is safe.

    Section 3.1 option 2: the operating system enables polynomial indexing at
    L1 only while *every* segment in use has pages of at least a threshold
    size (the paper's example: 256 KB pages for an 8 KB cache, exposing 13
    unmapped physical bits to a 7-bit hash).  Changing the decision requires
    an L1 flush, which the policy counts.
    """

    def __init__(self, threshold: int = 256 * 1024) -> None:
        log2_exact(threshold, "threshold")
        self._threshold = threshold
        self._segments: Dict[str, Segment] = {}
        self._poly_enabled = False
        self.flushes_required = 0

    @property
    def threshold(self) -> int:
        """Minimum page size for which I-Poly indexing may be enabled."""
        return self._threshold

    @property
    def poly_indexing_enabled(self) -> bool:
        """Current decision."""
        return self._poly_enabled

    def add_segment(self, name: str, segment: Segment) -> None:
        """Register (or replace) a segment and re-evaluate the decision."""
        self._segments[name] = segment
        self._reevaluate()

    def remove_segment(self, name: str) -> None:
        """Remove a segment and re-evaluate the decision."""
        self._segments.pop(name, None)
        self._reevaluate()

    def unmapped_bits(self, cache_offset_bits: int) -> int:
        """Physical address bits available to the hash below the smallest page."""
        if not self._segments:
            return 0
        smallest = min(s.page_size for s in self._segments.values())
        return max(0, log2_exact(smallest) - cache_offset_bits)

    def _reevaluate(self) -> None:
        enabled = bool(self._segments) and all(
            s.page_size >= self._threshold for s in self._segments.values()
        )
        if enabled != self._poly_enabled:
            # The paper requires an L1 flush whenever the index function changes.
            self.flushes_required += 1
            self._poly_enabled = enabled
