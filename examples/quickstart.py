#!/usr/bin/env python3
"""Quickstart: compare conventional and I-Poly cache indexing in a few lines.

This example builds two otherwise-identical 8 KB two-way caches — one with
conventional bit-selection indexing, one with the paper's skewed I-Poly
(irreducible polynomial) indexing — and drives both with a deliberately
nasty access pattern: a vector traversed with a power-of-two stride, the
classic conventional-cache killer.

Run it with::

    python examples/quickstart.py

Expected outcome: the conventional cache thrashes (miss ratio near 100%
after the first sweep) while the I-Poly cache behaves as if the stride were
benign, exactly the property Figure 1 of the paper demonstrates.
"""

from repro.cache import SetAssociativeCache
from repro.core import IPolyIndexing, derive_xor_matrix, poly_to_string
from repro.trace import strided_vector


def build_caches():
    """Build the two caches being compared (8 KB, 2-way, 32-byte lines)."""
    conventional = SetAssociativeCache(size_bytes=8 * 1024, block_size=32, ways=2)
    ipoly_index = IPolyIndexing(num_sets=128, ways=2, skewed=True, address_bits=19)
    ipoly = SetAssociativeCache(size_bytes=8 * 1024, block_size=32, ways=2,
                                index_function=ipoly_index)
    return conventional, ipoly


def main():
    conventional, ipoly = build_caches()

    # A 64-element vector of 8-byte values, elements 512 bytes apart (stride
    # 64), traversed eight times — each element lands in the same set of a
    # conventionally indexed cache.
    stride = 64
    for access in strided_vector(stride=stride, elements=64, sweeps=8):
        conventional.access(access.address, is_write=access.is_write)
        ipoly.access(access.address, is_write=access.is_write)

    print("Workload: 64-element vector, stride "
          f"{stride} elements ({stride * 8} bytes), 8 sweeps\n")
    print(f"{'cache':<28}{'miss ratio':>12}")
    for cache in (conventional, ipoly):
        print(f"{cache.name:<28}{cache.stats.miss_ratio:>11.1%}")

    # Peek at the hardware the I-Poly index function implies: one small XOR
    # tree per index bit.
    index_fn = ipoly.index_function
    matrix = derive_xor_matrix(index_fn)
    cost = matrix.cost()
    print(f"\nI-Poly modulus polynomial (way 0): "
          f"{poly_to_string(index_fn.polynomial_for_way(0))}")
    print(f"XOR implementation: {cost.index_bits} trees, max fan-in "
          f"{cost.max_fan_in}, {cost.two_input_gates} two-input gates, "
          f"depth {cost.tree_depth_gates} gate levels")


if __name__ == "__main__":
    main()
