"""Streaming trace ingestion: the v2 columnar format, compression, ``.din``.

The v1 formats in :mod:`repro.trace.trace_io` are record-oriented; turning a
multi-hundred-million-access trace into engine input through them costs one
Python object per access.  This module adds the scale path:

* **v2 packed binary format** — a counted 16-byte header
  (``b"CACTR2\\0\\0"`` + little-endian ``u64`` record count) followed by
  four contiguous little-endian column arrays::

      offset 16          addresses  u64 x count
      offset 16 + 8n     pcs        u64 x count
      offset 16 + 16n    sizes      u32 x count
      offset 16 + 20n    is_write   u8  x count   (0 or 1)

  An uncompressed v2 file maps straight into NumPy arrays with
  ``np.memmap`` — no parsing, no copies.

* **compressed wrappers** — readers transparently decompress gzip, bzip2
  and xz traces (any format inside) via the standard library, plus zstd
  when the optional ``zstandard`` module is installed.  Writers compress by
  suffix (``.gz``/``.bz2``/``.xz``/``.zst``).  Compressed v2 files cannot
  be mmap-ed; they stream through independent per-column cursors instead,
  so chunked iteration stays memory-bounded.

* **Dinero ``.din`` import** — the de-facto interchange format of classic
  cache studies (``label address`` per line; 0 = read, 1 = write,
  2 = instruction fetch).  Records parse with ``path:line`` precision and
  convert to v2 via :func:`import_din_trace`.

* **chunked iteration** — :func:`iter_trace_chunks` feeds any supported
  trace file (format auto-detected by magic, never by suffix) to the batch
  kernels as a stream of bounded :class:`~repro.engine.batch.AddressBatch`
  chunks.  The batch caches carry warm state across ``run()`` calls and the
  multiconfig profiler has an incremental builder, so chunked replay is
  bit-exact with materialising the whole trace at once — that equivalence
  (and the error-precision parity of every corruption case) is asserted by
  ``tests/test_trace_stream.py``.
"""

from __future__ import annotations

import bz2
import gzip
import io
import lzma
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from .record import MemoryAccess
from .trace_io import _BINARY_MAGIC, TraceReader, _parse_binary, _parse_text

__all__ = [
    "TRACE_V2_MAGIC",
    "TRACE_V2_HEADER_SIZE",
    "TRACE_V2_RECORD_BYTES",
    "TraceFormat",
    "TraceColumns",
    "TraceV2Writer",
    "detect_trace_format",
    "write_trace_v2",
    "read_trace_v2",
    "read_din_trace",
    "import_din_trace",
    "convert_trace",
    "read_trace_records",
    "iter_trace_chunks",
    "trace_record_count",
]

TRACE_V2_MAGIC = b"CACTR2\0\0"
_HEADER = struct.Struct("<8sQ")  # magic, record count
TRACE_V2_HEADER_SIZE = _HEADER.size  # 16
#: Bytes per record across all four columns (8 + 8 + 4 + 1).
TRACE_V2_RECORD_BYTES = 21

#: Column layout: (name, little-endian dtype, bytes per record).
_COLUMNS = (
    ("addresses", "<u8", 8),
    ("pcs", "<u8", 8),
    ("sizes", "<u4", 4),
    ("is_write", "u1", 1),
)

_U64_MAX = (1 << 64) - 1
_U32_MAX = (1 << 32) - 1

#: Default chunk size (records) of the streaming readers: ~21 MiB of column
#: data per chunk across all four columns.
DEFAULT_CHUNK_SIZE = 1 << 20


# --------------------------------------------------------------------- #
# compression layer
# --------------------------------------------------------------------- #

_COMPRESSION_MAGICS = (
    (b"\x1f\x8b", "gzip"),
    (b"BZh", "bz2"),
    (b"\xfd7zXZ\x00", "xz"),
    (b"\x28\xb5\x2f\xfd", "zstd"),
)

_WRITE_SUFFIXES = {".gz": "gzip", ".bz2": "bz2", ".xz": "xz", ".zst": "zstd"}


def _zstd_module():
    """The ``zstandard`` module, or a located error when it is absent.

    zstd support is gated, not assumed: the module is optional and the
    toolchain must work without it (gzip/bz2/xz come from the standard
    library and always work).
    """
    try:
        import zstandard
    except ImportError:
        raise ValueError(
            "this trace is zstd-compressed but the optional 'zstandard' "
            "module is not installed; recompress with gzip/bz2/xz or "
            "install zstandard") from None
    return zstandard


def _compression_of(path: Path) -> Optional[str]:
    """Compression wrapper of ``path`` detected by magic bytes (or None)."""
    with path.open("rb") as handle:
        head = handle.read(6)
    for magic, name in _COMPRESSION_MAGICS:
        if head.startswith(magic):
            return name
    return None


def _open_stream(path: Path, compression: Optional[str]) -> IO[bytes]:
    """Open ``path`` as a (decompressed) binary stream positioned at 0."""
    if compression is None:
        return path.open("rb")
    if compression == "gzip":
        return gzip.open(path, "rb")
    if compression == "bz2":
        return bz2.open(path, "rb")
    if compression == "xz":
        return lzma.open(path, "rb")
    if compression == "zstd":
        zstandard = _zstd_module()
        handle = path.open("rb")
        return zstandard.ZstdDecompressor().stream_reader(handle,
                                                          closefd=True)
    raise ValueError(f"unknown compression {compression!r}")  # pragma: no cover


def _open_write_stream(path: Path) -> IO[bytes]:
    """Open ``path`` for binary writing, compressing by suffix."""
    compression = _WRITE_SUFFIXES.get(path.suffix)
    if compression is None:
        return path.open("wb")
    if compression == "gzip":
        return gzip.open(path, "wb")
    if compression == "bz2":
        return bz2.open(path, "wb")
    if compression == "xz":
        return lzma.open(path, "wb")
    zstandard = _zstd_module()
    handle = path.open("wb")
    return zstandard.ZstdCompressor().stream_writer(handle, closefd=True)


def _seek_forward(handle: IO[bytes], offset: int) -> None:
    """Position a fresh stream at ``offset``, by seek or by read-discard."""
    try:
        handle.seek(offset)
        return
    except (OSError, AttributeError, io.UnsupportedOperation):
        pass
    remaining = offset
    while remaining:
        chunk = handle.read(min(remaining, 1 << 20))
        if not chunk:
            raise ValueError(f"truncated trace: could not reach byte offset "
                             f"{offset} ({remaining} bytes short)")
        remaining -= len(chunk)


def _read_exact(handle: IO[bytes], nbytes: int, label: str,
                what: str) -> bytes:
    """Read exactly ``nbytes`` or raise a located truncation error."""
    raw = handle.read(nbytes)
    if len(raw) != nbytes:
        raise ValueError(f"{label}: truncated v2 trace: {what} "
                         f"({len(raw)} of {nbytes} bytes)")
    return raw


# --------------------------------------------------------------------- #
# format detection
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class TraceFormat:
    """Detected container of a trace file."""

    #: ``"v2"``, ``"v1-binary"``, ``"text"`` or ``"din"``.
    kind: str
    #: ``"gzip"``/``"bz2"``/``"xz"``/``"zstd"`` or None (uncompressed).
    compression: Optional[str]


def detect_trace_format(path: Union[str, Path]) -> TraceFormat:
    """Sniff a trace file's format from its (decompressed) content.

    Detection is by magic bytes and first-line shape — never by file
    suffix, so renamed files keep working.  A bytes prefix of a binary
    magic dispatches to the matching binary parser so truncated headers
    keep their established error messages.
    """
    path = Path(path)
    compression = _compression_of(path)
    with _open_stream(path, compression) as handle:
        head = handle.read(8)
        if head == TRACE_V2_MAGIC:
            return TraceFormat("v2", compression)
        if head == _BINARY_MAGIC:
            return TraceFormat("v1-binary", compression)
        if len(head) < 8:
            # A short file that prefixes a binary magic is a truncated
            # binary header; route it to the parser that says so.
            if TRACE_V2_MAGIC.startswith(head) and not \
                    _BINARY_MAGIC.startswith(head):
                return TraceFormat("v2", compression)
            if _BINARY_MAGIC.startswith(head):
                return TraceFormat("v1-binary", compression)
        if hasattr(handle, "readline"):
            first_line = head + handle.readline(256)
        else:  # pragma: no cover - zstd stream readers lack readline
            first_line = head + handle.read(256)
    for line in first_line.split(b"\n"):
        try:
            text = line.decode("ascii").strip()
        except UnicodeDecodeError:
            break
        if not text:
            continue
        if text.startswith("#"):
            return TraceFormat("text", compression)
        token = text.split()[0]
        if token in ("R", "W"):
            return TraceFormat("text", compression)
        if token in ("0", "1", "2"):
            return TraceFormat("din", compression)
        break
    raise ValueError(f"{path}: unrecognised trace format (not v1/v2 binary, "
                     "text or .din)")


# --------------------------------------------------------------------- #
# v2 writing
# --------------------------------------------------------------------- #

def _normalise_columns(addresses, is_write, pcs, sizes,
                       label: str, base_index: int
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
    """Validate and canonicalise one chunk of column data.

    Enforces exactly what the readers enforce: addresses/pcs are
    non-negative ``u64``, sizes positive ``u32``, write flags 0/1.  Errors
    name the first offending record (``base_index`` offsets chunked
    appends so the index is trace-global).
    """
    addresses = np.asarray(addresses)
    n = addresses.shape[0] if addresses.ndim == 1 else -1
    if addresses.ndim != 1:
        raise ValueError(f"{label}: addresses must be one-dimensional")

    def _checked_unsigned(column, name, limit, dtype):
        array = np.asarray(column)
        if array.shape != (n,):
            raise ValueError(f"{label}: {name} shape {array.shape} does not "
                             f"match addresses shape {(n,)}")
        if n == 0:
            return np.empty(0, dtype=dtype)
        if array.dtype.kind == "f":
            raise ValueError(f"{label}: {name} must be integers, got a "
                             "floating-point array")
        if array.dtype.kind == "O":
            for position, value in enumerate(array):
                if not isinstance(value, (int, np.integer)) or value < 0 \
                        or value > limit:
                    raise ValueError(
                        f"{label}: record {base_index + position}: {name} "
                        f"value {value!r} outside [0, {limit:#x}]")
            return array.astype(dtype)
        if array.dtype.kind == "i":
            bad = np.where(array < 0)[0]
            if bad.size:
                raise ValueError(
                    f"{label}: record {base_index + int(bad[0])}: negative "
                    f"{name} value {int(array[bad[0]])}")
        elif array.dtype.kind != "u":
            raise ValueError(f"{label}: {name} must be integers, got dtype "
                             f"{array.dtype}")
        if int(array.max()) > limit:
            bad = int(np.argmax(array > limit))
            raise ValueError(
                f"{label}: record {base_index + bad}: {name} value "
                f"{int(array[bad])} exceeds {limit:#x}")
        return array.astype(dtype, copy=False)

    addr = _checked_unsigned(addresses, "address", _U64_MAX, "<u8")
    pcs_arr = (np.zeros(n, dtype="<u8") if pcs is None
               else _checked_unsigned(pcs, "pc", _U64_MAX, "<u8"))
    if sizes is None:
        sizes_arr = np.full(n, 8, dtype="<u4")
    else:
        sizes_arr = _checked_unsigned(sizes, "size", _U32_MAX, "<u4")
        if n and int(sizes_arr.min()) == 0:
            bad = int(np.argmin(sizes_arr))
            raise ValueError(f"{label}: record {base_index + bad}: size "
                             "must be positive, got 0")
    if is_write is None:
        flags = np.zeros(n, dtype="u1")
    else:
        flag_input = np.asarray(is_write)
        if flag_input.shape != (n,):
            raise ValueError(f"{label}: is_write shape {flag_input.shape} "
                             f"does not match addresses shape {(n,)}")
        if flag_input.dtype == bool:
            flags = flag_input.astype("u1")
        else:
            flags = flag_input.astype("u1", copy=True)
            bad = np.where((flag_input != 0) & (flag_input != 1))[0]
            if bad.size:
                raise ValueError(
                    f"{label}: record {base_index + int(bad[0])}: write "
                    f"flag must be 0/1/bool")
    return addr, pcs_arr, sizes_arr, flags


def write_trace_v2(path: Union[str, Path], addresses, is_write=None,
                   pcs=None, sizes=None) -> int:
    """Write one in-memory column set as a v2 trace; returns the count.

    ``pcs`` defaults to zeros and ``sizes`` to 8 (the
    :class:`~repro.trace.record.MemoryAccess` defaults).  A ``.gz``,
    ``.bz2``, ``.xz`` or ``.zst`` suffix compresses the output.  For
    chunked / larger-than-memory writing use :class:`TraceV2Writer`.
    """
    path = Path(path)
    addr, pcs_arr, sizes_arr, flags = _normalise_columns(
        addresses, is_write, pcs, sizes, str(path), 0)
    count = addr.shape[0]
    with _open_write_stream(path) as handle:
        handle.write(_HEADER.pack(TRACE_V2_MAGIC, count))
        for array in (addr, pcs_arr, sizes_arr, flags):
            handle.write(array.tobytes())
    return count


class TraceV2Writer:
    """Chunked, memory-bounded v2 writer (context manager).

    The v2 layout is columnar, so appending records cannot simply extend
    the file: each column is spooled to its own temporary file next to the
    destination and the columns are concatenated (behind the counted
    header) on :meth:`close`.  Peak memory is one chunk, independent of the
    final trace length — this is what the nightly 50M-access generation
    uses.  On an exception the temporaries and any partial destination are
    removed.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._count = 0
        self._closed = False
        self._spools = []
        for position, (name, _, _) in enumerate(_COLUMNS):
            spool_path = self._path.with_name(
                self._path.name + f".{name}.tmp")
            self._spools.append((spool_path, spool_path.open("wb")))

    @property
    def count(self) -> int:
        """Records appended so far."""
        return self._count

    def append(self, addresses, is_write=None, pcs=None, sizes=None) -> int:
        """Append one chunk of columns; returns the new total count."""
        if self._closed:
            raise ValueError("writer is closed")
        columns = _normalise_columns(addresses, is_write, pcs, sizes,
                                     str(self._path), self._count)
        for (_, handle), array in zip(self._spools, columns):
            handle.write(array.tobytes())
        self._count += columns[0].shape[0]
        return self._count

    def append_records(self, records: Iterable[MemoryAccess],
                       chunk_size: int = 65536) -> int:
        """Append an iterable of records in bounded chunks."""
        addresses, pcs, sizes, flags = [], [], [], []

        def flush() -> None:
            if addresses:
                self.append(np.array(addresses, dtype=object),
                            is_write=np.array(flags, dtype=bool),
                            pcs=np.array(pcs, dtype=object),
                            sizes=np.array(sizes, dtype=object))
                addresses.clear(), pcs.clear(), sizes.clear(), flags.clear()

        for access in records:
            addresses.append(access.address)
            pcs.append(access.pc)
            sizes.append(access.size)
            flags.append(bool(access.is_write))
            if len(addresses) >= chunk_size:
                flush()
        flush()
        return self._count

    def _discard(self) -> None:
        for spool_path, handle in self._spools:
            if not handle.closed:
                handle.close()
            spool_path.unlink(missing_ok=True)

    def abort(self) -> None:
        """Drop the spools and any partial destination without writing."""
        self._closed = True
        self._discard()
        self._path.unlink(missing_ok=True)

    def close(self) -> int:
        """Assemble the final file (header + columns); returns the count."""
        if self._closed:
            return self._count
        self._closed = True
        try:
            for _, handle in self._spools:
                handle.close()
            with _open_write_stream(self._path) as out:
                out.write(_HEADER.pack(TRACE_V2_MAGIC, self._count))
                for spool_path, _ in self._spools:
                    with spool_path.open("rb") as spool:
                        while True:
                            block = spool.read(1 << 20)
                            if not block:
                                break
                            out.write(block)
        finally:
            self._discard()
        return self._count

    def __enter__(self) -> "TraceV2Writer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# --------------------------------------------------------------------- #
# v2 reading
# --------------------------------------------------------------------- #

def _read_v2_count(handle: IO[bytes], label: str) -> int:
    raw = handle.read(TRACE_V2_HEADER_SIZE)
    if len(raw) != TRACE_V2_HEADER_SIZE:
        raise ValueError(f"{label}: truncated v2 header ({len(raw)} of "
                         f"{TRACE_V2_HEADER_SIZE} bytes)")
    magic, count = _HEADER.unpack(raw)
    if magic != TRACE_V2_MAGIC:
        raise ValueError(f"{label} is not a repro v2 trace (bad magic)")
    return count


def _v2_column_offset(count: int, column: str) -> int:
    offset = TRACE_V2_HEADER_SIZE
    for name, _, width in _COLUMNS:
        if name == column:
            return offset
        offset += width * count
    raise KeyError(column)  # pragma: no cover


def _check_v2_size(path: Path, count: int, label: str) -> None:
    """Exact-size check for uncompressed v2 files (mmap-safety too)."""
    expected = TRACE_V2_HEADER_SIZE + TRACE_V2_RECORD_BYTES * count
    actual = path.stat().st_size
    if actual < expected:
        raise ValueError(f"{label}: truncated v2 trace: expected {expected} "
                         f"bytes for {count} records, got {actual}")
    if actual > expected:
        raise ValueError(f"{label}: trailing data after {count} records "
                         f"({actual - expected} extra bytes)")


def _check_flags(flags: np.ndarray, base_index: int, label: str) -> None:
    bad = np.where(flags > 1)[0]
    if bad.size:
        index = int(bad[0])
        raise ValueError(f"{label}: record {base_index + index}: corrupt "
                         f"write flag {int(flags[index]):#04x} "
                         "(expected 0 or 1)")


def _check_sizes(sizes: np.ndarray, base_index: int, label: str) -> None:
    bad = np.where(sizes == 0)[0]
    if bad.size:
        index = int(bad[0])
        raise ValueError(f"{label}: record {base_index + index}: size must "
                         "be positive, got 0")


@dataclass(frozen=True)
class TraceColumns:
    """The four column arrays of a v2 trace (possibly memory-mapped)."""

    addresses: np.ndarray  # uint64
    pcs: np.ndarray        # uint64
    sizes: np.ndarray      # uint32
    is_write: np.ndarray   # bool

    @property
    def count(self) -> int:
        """Number of records."""
        return int(self.addresses.shape[0])

    def records(self) -> Iterator[MemoryAccess]:
        """Reconstruct the record stream (exact v1 round-trip)."""
        for address, pc, size, write in zip(
                self.addresses.tolist(), self.pcs.tolist(),
                self.sizes.tolist(), self.is_write.tolist()):
            yield MemoryAccess(address=address, is_write=bool(write),
                               pc=pc, size=size)


def read_trace_v2(path: Union[str, Path],
                  use_mmap: bool = True) -> TraceColumns:
    """Load a whole v2 trace as validated column arrays.

    Uncompressed files memory-map by default (``use_mmap=False`` forces a
    buffered read); compressed files always decompress into memory.  The
    write-flag and size columns are validated with record precision.
    """
    path = Path(path)
    label = str(path)
    compression = _compression_of(path)
    if compression is None and use_mmap:
        with path.open("rb") as handle:
            count = _read_v2_count(handle, label)
        _check_v2_size(path, count, label)
        columns = {}
        for name, dtype, _ in _COLUMNS:
            columns[name] = np.memmap(
                path, dtype=dtype, mode="r",
                offset=_v2_column_offset(count, name), shape=(count,))
    else:
        with _open_stream(path, compression) as handle:
            count = _read_v2_count(handle, label)
            if compression is None:
                _check_v2_size(path, count, label)
            columns = {}
            for name, dtype, width in _COLUMNS:
                raw = _read_exact(handle, width * count, label,
                                  f"{name} column")
                columns[name] = np.frombuffer(raw, dtype=dtype)
            if handle.read(1):
                raise ValueError(f"{label}: trailing data after {count} "
                                 "records")
    _check_sizes(columns["sizes"], 0, label)
    _check_flags(columns["is_write"], 0, label)
    return TraceColumns(addresses=columns["addresses"].astype(np.uint64,
                                                              copy=False),
                        pcs=columns["pcs"].astype(np.uint64, copy=False),
                        sizes=columns["sizes"].astype(np.uint32, copy=False),
                        is_write=columns["is_write"].astype(bool))


@contextmanager
def _v2_cursors(path: Path, compression: Optional[str], label: str,
                columns: Tuple[str, ...]):
    """Open one positioned stream per requested column (plus the count).

    Compressed files cannot seek cheaply, so each column gets its own
    decompression cursor — 2x (or 4x) the decompression work, but memory
    stays bounded by the chunk size instead of a whole column.
    """
    handles = []
    try:
        with _open_stream(path, compression) as head:
            count = _read_v2_count(head, label)
        if compression is None:
            _check_v2_size(path, count, label)
        for name in columns:
            handle = _open_stream(path, compression)
            handles.append(handle)
            _seek_forward(handle, _v2_column_offset(count, name))
        yield count, handles
    finally:
        for handle in handles:
            handle.close()


def _iter_v2_chunk_columns(path: Path, compression: Optional[str],
                           label: str, chunk_size: int,
                           columns: Tuple[str, ...]):
    """Yield ``(start, {name: array})`` chunks of the requested columns."""
    widths = {name: (dtype, width) for name, dtype, width in _COLUMNS}
    with _v2_cursors(path, compression, label, columns) as (count, handles):
        start = 0
        while start < count:
            n = min(chunk_size, count - start)
            chunk = {}
            for name, handle in zip(columns, handles):
                dtype, width = widths[name]
                raw = _read_exact(
                    handle, width * n, label,
                    f"{name} column records {start}..{start + n}")
                chunk[name] = np.frombuffer(raw, dtype=dtype)
            if "sizes" in chunk:
                _check_sizes(chunk["sizes"], start, label)
            if "is_write" in chunk:
                _check_flags(chunk["is_write"], start, label)
            yield start, chunk
            start += n
        # The last requested column ends the file; anything after it is
        # corruption (uncompressed files were size-checked up front).
        if handles and handles[-1].read(1):
            raise ValueError(f"{label}: trailing data after {count} records")


def _iter_v2_chunks_mmap(path: Path, label: str, chunk_size: int):
    """Chunked (addresses, is_write) iteration over an mmap-ed v2 file.

    Zero-copy per chunk; note that pages touched stay resident until the
    OS reclaims them, so for strict peak-RSS bounds prefer the buffered
    path (``use_mmap=False``, the default of :func:`iter_trace_chunks`).
    """
    with path.open("rb") as handle:
        count = _read_v2_count(handle, label)
    _check_v2_size(path, count, label)
    addresses = np.memmap(path, dtype="<u8", mode="r",
                          offset=_v2_column_offset(count, "addresses"),
                          shape=(count,))
    flags = np.memmap(path, dtype="u1", mode="r",
                      offset=_v2_column_offset(count, "is_write"),
                      shape=(count,))
    for start in range(0, count, chunk_size):
        stop = min(start + chunk_size, count)
        flag_chunk = np.asarray(flags[start:stop])
        _check_flags(flag_chunk, start, label)
        yield np.asarray(addresses[start:stop]), flag_chunk.astype(bool)


def _iter_v2_records(path: Path, compression: Optional[str], label: str,
                     chunk_size: int = 65536) -> Iterator[MemoryAccess]:
    """Record-level v2 iteration (for the scalar engine and converters)."""
    names = tuple(name for name, _, _ in _COLUMNS)
    for _, chunk in _iter_v2_chunk_columns(path, compression, label,
                                           chunk_size, names):
        for address, pc, size, write in zip(
                chunk["addresses"].tolist(), chunk["pcs"].tolist(),
                chunk["sizes"].tolist(), chunk["is_write"].tolist()):
            yield MemoryAccess(address=address, is_write=bool(write),
                               pc=pc, size=size)


# --------------------------------------------------------------------- #
# Dinero .din import
# --------------------------------------------------------------------- #

#: Access size assumed for ``.din`` records — the classic traces are
#: 32-bit-word streams and the format carries no size field.
DIN_ACCESS_SIZE = 4


def _parse_din(handle: IO[str], label: str) -> Iterator[MemoryAccess]:
    """Parse Dinero ``.din`` records (``label address``, both per line).

    Labels: 0 = data read, 1 = data write, 2 = instruction fetch (kept as
    a load with ``pc == address``).  Extra fields on a line are ignored,
    as Dinero does.  Errors carry ``label:line`` precision.
    """
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(
                f"{label}:{line_number}: malformed .din record {line!r} "
                "(expected 'label address')")
        if parts[0] not in ("0", "1", "2"):
            raise ValueError(
                f"{label}:{line_number}: bad .din access label "
                f"{parts[0]!r} (expected 0, 1 or 2)")
        try:
            address = int(parts[1], 16)
        except ValueError:
            raise ValueError(f"{label}:{line_number}: non-hex address "
                             f"field in {line!r}") from None
        if address < 0:
            raise ValueError(f"{label}:{line_number}: negative address "
                             f"in {line!r}")
        kind = int(parts[0])
        yield MemoryAccess(address=address, is_write=kind == 1,
                           pc=address if kind == 2 else 0,
                           size=DIN_ACCESS_SIZE)


def read_din_trace(path: Union[str, Path]) -> TraceReader:
    """Lazily read a ``.din`` trace (iterator + context manager)."""
    path = Path(path)
    handle = path.open("r", encoding="ascii")
    return TraceReader(handle, _parse_din(handle, str(path)))


def import_din_trace(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Convert a ``.din`` trace to v2; returns the record count."""
    return convert_trace(src, dst)


# --------------------------------------------------------------------- #
# unified readers
# --------------------------------------------------------------------- #

def trace_record_count(path: Union[str, Path]) -> Optional[int]:
    """Record count from a v2 counted header, or None for v1/text/din."""
    path = Path(path)
    fmt = detect_trace_format(path)
    if fmt.kind != "v2":
        return None
    with _open_stream(path, fmt.compression) as handle:
        return _read_v2_count(handle, str(path))


def read_trace_records(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Iterate any supported trace file as :class:`MemoryAccess` records.

    Format and compression are auto-detected.  v1/text/din inputs return a
    :class:`~repro.trace.trace_io.TraceReader` (deterministic close); v2
    inputs stream in bounded column chunks.
    """
    path = Path(path)
    label = str(path)
    fmt = detect_trace_format(path)
    if fmt.kind == "v2":
        return _iter_v2_records(path, fmt.compression, label)
    handle = _open_stream(path, fmt.compression)
    if fmt.kind == "v1-binary":
        return TraceReader(handle, _parse_binary(handle, label))
    text = io.TextIOWrapper(handle, encoding="ascii")
    parser = _parse_text if fmt.kind == "text" else _parse_din
    return TraceReader(text, parser(text, label))


def _iter_record_chunks(records: Iterator[MemoryAccess], chunk_size: int):
    """Accumulate a record stream into ``AddressBatch`` chunks.

    A parse error propagates as soon as it is hit — after every complete
    earlier chunk has been yielded — with its original record/line
    precision intact (the mid-stream guarantee the corruption tests pin).
    """
    from ..engine.batch import AddressBatch

    addresses: list = []
    writes: list = []
    try:
        for access in records:
            addresses.append(access.address)
            writes.append(access.is_write)
            if len(addresses) >= chunk_size:
                yield AddressBatch.from_arrays(
                    np.array(addresses, dtype=np.uint64),
                    np.array(writes, dtype=bool))
                addresses, writes = [], []
        if addresses:
            yield AddressBatch.from_arrays(
                np.array(addresses, dtype=np.uint64),
                np.array(writes, dtype=bool))
    finally:
        close = getattr(records, "close", None)
        if close is not None:
            close()


def iter_trace_chunks(path: Union[str, Path],
                      chunk_size: int = DEFAULT_CHUNK_SIZE,
                      use_mmap: bool = False):
    """Stream any trace file as bounded :class:`AddressBatch` chunks.

    The engine-facing entry point of the streaming layer: every yielded
    batch holds at most ``chunk_size`` accesses, so peak memory is bounded
    by the chunk (plus cache state) regardless of trace length.  Feeding
    the chunks to ``BatchSetAssociativeCache.run_chunks`` (or the
    multiconfig builders) is bit-exact with one ``run()`` over the whole
    trace.

    ``use_mmap=True`` maps uncompressed v2 columns instead of reading them
    — faster on warm files, but mapped pages count against resident memory
    until the OS evicts them, so the memory-bounded sweeps keep the
    default buffered path.  v1/text/din inputs go through their validating
    record parsers, preserving each format's error precision mid-stream.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    path = Path(path)
    label = str(path)
    fmt = detect_trace_format(path)
    if fmt.kind == "v2":
        from ..engine.batch import AddressBatch

        def v2_batches():
            if fmt.compression is None and use_mmap:
                chunks = _iter_v2_chunks_mmap(path, label, chunk_size)
                for addresses, flags in chunks:
                    yield AddressBatch.from_arrays(addresses, flags)
                return
            columns = ("addresses", "is_write")
            for start, chunk in _iter_v2_chunk_columns(
                    path, fmt.compression, label, chunk_size, columns):
                yield AddressBatch.from_arrays(
                    chunk["addresses"], chunk["is_write"].astype(bool))
        return v2_batches()
    return _iter_record_chunks(read_trace_records(path), chunk_size)


def convert_trace(src: Union[str, Path], dst: Union[str, Path],
                  chunk_size: int = 65536) -> int:
    """Convert any supported trace to v2, memory-bounded; returns count."""
    with TraceV2Writer(dst) as writer:
        writer.append_records(read_trace_records(src), chunk_size=chunk_size)
        return writer.count
