"""Fault-injection suite for the resilient sweep executor.

Every test drives ``run_sweep`` through a seeded :class:`ChaosWorker`
(raise / hang-past-timeout / ``os._exit`` worker kill) and asserts the
recovered sweep is bit-exact with a fault-free serial run, that collected
failures are structured, and that journalled (completed) tasks are never
re-executed on resume.

The chaos seed defaults to a fixed value for deterministic local runs; the
nightly ``sweep-chaos`` CI job injects a fresh ``REPRO_CHAOS_SEED`` per run
(echoed in the job log) and uploads the sweep journals on failure
(``REPRO_CHAOS_ARTIFACT_DIR``).
"""

import os
import threading
from pathlib import Path

import pytest

from repro.engine.checkpoint import SweepJournal, task_digest
from repro.engine.faults import (
    ChaosError,
    ChaosWorker,
    FaultSpec,
    plan_faults,
)
from repro.engine.sweep import (
    SweepError,
    TaskFailure,
    backoff_delays,
    run_sweep,
)

#: Fresh per nightly-CI run; fixed for deterministic local/tier-1 runs.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260808"))


def _tasks(count, log_path=""):
    """Tasks carry their own execution-log path so pool workers can report."""
    return [(index, str(log_path)) for index in range(count)]


def _square_task(task):
    """Module-level sweep worker (picklable); logs each execution."""
    index, log_path = task
    if log_path:
        # O_APPEND keeps concurrent small writes whole across processes.
        with open(log_path, "a", encoding="ascii") as handle:
            handle.write(f"{index}\n")
    return index * index


def _poison_task(task):
    raise AssertionError(
        f"journalled task {task!r} must not be re-executed on resume")


def _read_log(log_path):
    text = Path(log_path).read_text(encoding="ascii")
    return [int(line) for line in text.splitlines()]


@pytest.fixture
def journal_dir(tmp_path):
    """Journal location: the CI artifact dir when set, else tmp_path."""
    env = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if env:
        path = Path(env) / tmp_path.name
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


class TestBackoff:
    def test_schedule_is_deterministic_per_seed(self):
        first = backoff_delays(5, 0.1, seed=CHAOS_SEED)
        again = backoff_delays(5, 0.1, seed=CHAOS_SEED)
        other = backoff_delays(5, 0.1, seed=CHAOS_SEED + 1)
        assert first == again
        assert first != other

    def test_exponential_envelope_with_jitter_and_cap(self):
        delays = backoff_delays(6, 0.1, seed=3, cap=1.5)
        for position, delay in enumerate(delays):
            assert delay <= 1.5
            assert delay >= min(1.5, 0.1 * (2 ** position) * 0.5)
            assert delay <= 0.1 * (2 ** position) * 1.5


class TestInjectedRaises:
    def test_process_pool_retries_to_bit_exact(self, tmp_path):
        tasks = _tasks(24)
        faults = plan_faults(tasks, CHAOS_SEED, count=5, kinds=("raise",))
        chaos = ChaosWorker(_square_task, faults, str(tmp_path))
        results = run_sweep(chaos, tasks, workers=2, chunksize=3, retries=2,
                            backoff_base=0.0, backoff_seed=CHAOS_SEED)
        assert results == [_square_task(task) for task in tasks]

    def test_chunk_mates_survive_a_raising_task(self, tmp_path):
        """One bad task in a chunk must not discard its chunk-mates' work."""
        tasks = _tasks(8, tmp_path / "log.txt")
        bad = task_digest(tasks[3])
        chaos = ChaosWorker(_square_task, {bad: FaultSpec("raise",
                                                          once=False)},
                            str(tmp_path))
        results = run_sweep(chaos, tasks, workers=2, chunksize=4, retries=1,
                            backoff_base=0.0, on_error="collect")
        for index, value in enumerate(results):
            if index == 3:
                assert isinstance(value, TaskFailure)
            else:
                assert value == index * index
        # Chunk-mates ran exactly once each despite sharing a dispatch
        # with the persistent failure.
        executed = _read_log(tmp_path / "log.txt")
        assert sorted(set(executed)) == [i for i in range(8) if i != 3]
        assert len(executed) == 7

    def test_on_error_collect_slots_structured_failure(self, tmp_path):
        tasks = _tasks(6)
        bad = task_digest(tasks[2])
        chaos = ChaosWorker(_square_task, {bad: FaultSpec("raise",
                                                          once=False)},
                            str(tmp_path))
        results = run_sweep(chaos, tasks, mode="serial", retries=1,
                            backoff_base=0.0, on_error="collect")
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "ChaosError"
        assert failure.attempts == 2  # initial try + 1 retry
        assert failure.mode == "serial"
        assert repr(tasks[2]) == failure.task
        assert [value for index, value in enumerate(results) if index != 2] \
            == [index * index for index in range(6) if index != 2]

    def test_on_error_raise_aborts_with_sweep_error(self, tmp_path):
        tasks = _tasks(4)
        bad = task_digest(tasks[1])
        chaos = ChaosWorker(_square_task, {bad: FaultSpec("raise",
                                                          once=False)},
                            str(tmp_path))
        with pytest.raises(SweepError) as excinfo:
            run_sweep(chaos, tasks, mode="serial", retries=1,
                      backoff_base=0.0)
        assert excinfo.value.failure.attempts == 2
        assert "ChaosError" in str(excinfo.value)


class TestKilledWorkers:
    def test_worker_kill_rebuilds_pool_bit_exact(self, tmp_path):
        """os._exit in a worker (BrokenProcessPool) must not abort the sweep
        or lose completed results."""
        log = tmp_path / "log.txt"
        tasks = _tasks(16, log)
        faults = plan_faults(tasks, CHAOS_SEED, count=2, kinds=("kill",))
        chaos = ChaosWorker(_square_task, faults, str(tmp_path))
        results = run_sweep(chaos, tasks, workers=2, chunksize=1, retries=2,
                            backoff_base=0.0)
        assert results == [index * index for index in range(16)]
        executed = _read_log(log)
        # Every task ran; rework is bounded by what was in flight at each
        # of the two pool breaks, so completed work was preserved.
        assert sorted(set(executed)) == list(range(16))
        assert len(executed) <= 16 + 2 * 3

    def test_mixed_fault_storm_matches_serial(self, tmp_path):
        """The acceptance scenario: seeded kills+raises mid-sweep, recovered
        results bit-exact with the fault-free serial run."""
        tasks = _tasks(20)
        faults = plan_faults(tasks, CHAOS_SEED, count=4,
                             kinds=("raise", "kill"))
        chaos = ChaosWorker(_square_task, faults, str(tmp_path))
        expected = [_square_task(task) for task in tasks]
        results = run_sweep(chaos, tasks, workers=2, chunksize=2, retries=3,
                            backoff_base=0.0, backoff_seed=CHAOS_SEED)
        assert results == expected


class TestHangsAndTimeouts:
    def test_hung_worker_times_out_and_recovers(self, tmp_path):
        tasks = _tasks(8)
        hung = task_digest(tasks[5])
        chaos = ChaosWorker(_square_task, {hung: FaultSpec("hang")},
                            str(tmp_path), hang_seconds=8.0)
        results = run_sweep(chaos, tasks, workers=2, chunksize=1, retries=1,
                            timeout=0.75, backoff_base=0.0)
        assert results == [index * index for index in range(8)]

    def test_persistent_hang_collects_timeout_failure(self, tmp_path):
        tasks = _tasks(6)
        hung = task_digest(tasks[2])
        chaos = ChaosWorker(_square_task, {hung: FaultSpec("hang",
                                                           once=False)},
                            str(tmp_path), hang_seconds=8.0)
        results = run_sweep(chaos, tasks, workers=2, chunksize=1, retries=1,
                            timeout=0.5, backoff_base=0.0,
                            on_error="collect", max_pool_rebuilds=5)
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "TimeoutError"
        assert failure.attempts == 2
        assert [value for index, value in enumerate(results) if index != 2] \
            == [index * index for index in range(6) if index != 2]


class TestJournalAndResume:
    def test_journal_records_every_completed_task(self, journal_dir, tmp_path):
        journal = journal_dir / "full.jsonl"
        tasks = _tasks(10)
        results = run_sweep(_square_task, tasks, workers=2, chunksize=2,
                            journal=str(journal))
        assert results == [index * index for index in range(10)]
        loaded = SweepJournal(journal).load()
        assert len(loaded) == 10
        for index, task in enumerate(tasks):
            assert loaded[(index, task_digest(task))] == index * index

    def test_resume_never_reexecutes_completed_tasks(self, journal_dir):
        journal = journal_dir / "resume.jsonl"
        tasks = _tasks(10)
        first = run_sweep(_square_task, tasks, workers=2, chunksize=2,
                          journal=str(journal))
        # A worker that would blow up on any execution: the resumed run
        # must serve every slot from the journal without calling it.
        resumed = run_sweep(_poison_task, tasks, workers=2,
                            resume=str(journal))
        assert resumed == first

    def test_partial_journal_resumes_from_last_completed(self, journal_dir,
                                                         tmp_path):
        full = journal_dir / "partial-src.jsonl"
        tasks_quiet = _tasks(12)
        run_sweep(_square_task, tasks_quiet, mode="serial",
                  journal=str(full))
        # Keep the header plus the first 7 records: a sweep killed mid-run.
        partial = journal_dir / "partial.jsonl"
        lines = full.read_text(encoding="utf-8").splitlines()
        partial.write_text("\n".join(lines[:1 + 7]) + "\n", encoding="utf-8")
        log = tmp_path / "log.txt"
        tasks = _tasks(12, log)
        # Digest covers the whole task, so the resumed task list must match
        # the journalled one — rebuild the journal records against the
        # logging tasks by mapping positions.
        journal = journal_dir / "partial-live.jsonl"
        source = SweepJournal(partial).load()
        live = SweepJournal(journal)
        live.ensure_header()
        for (index, _digest), value in source.items():
            live.append(index, task_digest(tasks[index]), value)
        resumed = run_sweep(_square_task, tasks, workers=2, chunksize=3,
                            journal=str(journal), resume=str(journal))
        assert resumed == [index * index for index in range(12)]
        # Only the 5 unjournalled tasks executed.
        assert sorted(_read_log(log)) == list(range(7, 12))
        # And the journal now covers the full sweep.
        assert len(SweepJournal(journal).load()) == 12

    def test_truncated_final_record_is_tolerated(self, journal_dir):
        journal = journal_dir / "truncated.jsonl"
        tasks = _tasks(6)
        first = run_sweep(_square_task, tasks, mode="serial",
                          journal=str(journal))
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "digest": "dead')  # crash mid-append
        resumed = run_sweep(_poison_task, tasks, mode="serial",
                            resume=str(journal))
        assert resumed == first

    def test_corrupt_middle_record_raises_with_location(self, tmp_path):
        journal = tmp_path / "corrupt.jsonl"
        run_sweep(_square_task, _tasks(3), mode="serial",
                  journal=str(journal))
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[2] = '{"index": broken'
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"corrupt\.jsonl:3"):
            SweepJournal(journal).load()

    def test_garbage_only_line_is_not_a_journal(self, tmp_path):
        # A file whose line 1 is undecodable must not ride the
        # truncated-final-append escape (line 1 == last line): it is not a
        # crashed journal, it is not a journal at all.
        journal = tmp_path / "noise.jsonl"
        journal.write_text("this is not json\n", encoding="utf-8")
        with pytest.raises(ValueError,
                           match=r"noise\.jsonl:1: not a repro sweep "
                                 "journal"):
            SweepJournal(journal).load()

    def test_wrong_header_object_is_not_a_journal(self, tmp_path):
        journal = tmp_path / "alien.jsonl"
        journal.write_text('{"format": "something-else", "version": 1}\n',
                           encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro sweep journal"):
            SweepJournal(journal).load()

    @pytest.mark.parametrize("record,detail", [
        ('{"index": "3", "digest": "abc", "result": 9}',
         "index must be an integer"),
        ('{"index": true, "digest": "abc", "result": 9}',
         "index must be an integer"),
        ('{"index": 3, "digest": 42, "result": 9}',
         "digest must be a string"),
    ])
    def test_mistyped_keys_are_corrupt_not_silently_ignored(self, tmp_path,
                                                            record, detail):
        # A mis-typed key would never match any (position, digest) slot on
        # resume, silently redoing the recorded work; load() must say the
        # journal is bad instead.
        journal = tmp_path / "typed.jsonl"
        run_sweep(_square_task, _tasks(2), mode="serial",
                  journal=str(journal))
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(record + "\n")
        with pytest.raises(ValueError) as excinfo:
            SweepJournal(journal).load()
        message = str(excinfo.value)
        assert "typed.jsonl:4: corrupt journal record" in message
        assert detail in message

    def test_resume_ignores_records_for_changed_tasks(self, tmp_path):
        journal = tmp_path / "changed.jsonl"
        run_sweep(_square_task, _tasks(4), mode="serial",
                  journal=str(journal))
        changed = [(index + 100, "") for index in range(4)]
        results = run_sweep(_square_task, changed, mode="serial",
                            resume=str(journal))
        assert results == [(index + 100) ** 2 for index in range(4)]

    def test_collected_failures_are_not_journalled(self, tmp_path):
        journal = tmp_path / "failures.jsonl"
        tasks = _tasks(5)
        bad = task_digest(tasks[4])
        chaos = ChaosWorker(_square_task, {bad: FaultSpec("raise",
                                                          once=False)},
                            str(tmp_path))
        results = run_sweep(chaos, tasks, mode="serial", on_error="collect",
                            journal=str(journal))
        assert isinstance(results[4], TaskFailure)
        assert len(SweepJournal(journal).load()) == 4
        # The failed slot stays pending in the journal, so a resumed run
        # (with a healthy worker) retries exactly that task.
        healthy = run_sweep(_square_task, tasks, mode="serial",
                            journal=str(journal), resume=str(journal))
        assert healthy == [index * index for index in range(5)]


_INIT_CALLS = []
_MAIN_PID = os.getpid()


def _main_only_initializer():
    """Initializer that only works on the in-process serial path."""
    if (os.getpid() != _MAIN_PID
            or threading.current_thread() is not threading.main_thread()):
        raise RuntimeError("initializer refuses pool workers")
    _INIT_CALLS.append("init")


class TestDegradeChain:
    def test_failing_initializer_degrades_to_serial_once(self):
        """process -> thread -> serial degradation with an initializer that
        breaks every pool: the surviving serial path must run it exactly
        once and still produce every result."""
        _INIT_CALLS.clear()
        results = run_sweep(_square_task, _tasks(5), workers=2,
                            mode="process", initializer=_main_only_initializer)
        assert results == [index * index for index in range(5)]
        assert _INIT_CALLS == ["init"]


class TestChaosPlanning:
    def test_plan_is_deterministic_for_a_seed(self):
        tasks = _tasks(30)
        assert plan_faults(tasks, CHAOS_SEED, count=4) == \
            plan_faults(tasks, CHAOS_SEED, count=4)
        assert plan_faults(tasks, CHAOS_SEED, count=4) != \
            plan_faults(tasks, CHAOS_SEED + 1, count=4)

    def test_plan_validates_kinds(self):
        with pytest.raises(ValueError):
            plan_faults(_tasks(4), 1, kinds=("explode",))
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_once_marker_arms_exactly_once(self, tmp_path):
        tasks = _tasks(3)
        bad = task_digest(tasks[1])
        chaos = ChaosWorker(_square_task, {bad: FaultSpec("raise")},
                            str(tmp_path))
        with pytest.raises(ChaosError):
            chaos(tasks[1])
        assert chaos(tasks[1]) == 1  # marker exists: runs clean


class TestDigest:
    def test_digest_is_stable_and_content_keyed(self):
        assert task_digest((1, "a")) == task_digest((1, "a"))
        assert task_digest((1, "a")) != task_digest((2, "a"))

    def test_journal_pickles_non_json_results(self, tmp_path):
        journal = SweepJournal(tmp_path / "pickle.jsonl")
        journal.ensure_header()
        value = {"tuple": (1, 2)}  # tuples do not survive JSON
        journal.append(0, "d0", value)
        journal.append(1, "d1", {"plain": [1.5, "x"]})
        loaded = journal.load()
        assert loaded[(0, "d0")] == {"tuple": (1, 2)}
        assert isinstance(loaded[(0, "d0")]["tuple"], tuple)
        assert loaded[(1, "d1")] == {"plain": [1.5, "x"]}

    def test_non_journal_file_is_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"something": "else"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro sweep journal"):
            SweepJournal(bogus).load()
