"""Unit tests for the XOR-matrix hardware view."""

import pytest

from repro.core.index import (
    BitSelectIndexing,
    IPolyIndexing,
    PrimeModuloIndexing,
    XorFoldIndexing,
)
from repro.core.xor_matrix import (
    choose_low_fanin_polynomial,
    derive_xor_matrix,
    is_linear,
)


class TestDerivation:
    def test_bit_select_is_identity_matrix(self):
        fn = BitSelectIndexing(64)
        matrix = derive_xor_matrix(fn)
        assert matrix.index_bits == 6
        for i in range(6):
            assert matrix.inputs_of(i) == [i]
            assert matrix.fan_in(i) == 1

    def test_xor_fold_has_fan_in_two(self):
        fn = XorFoldIndexing(128, skewed=False)
        matrix = derive_xor_matrix(fn)
        assert all(matrix.fan_in(i) == 2 for i in range(7))

    def test_ipoly_matrix_reproduces_function(self):
        fn = IPolyIndexing(128, address_bits=19)
        matrix = derive_xor_matrix(fn)
        for block in (0, 1, 12345, 0x7FFFF, 98765):
            assert matrix.apply(block) == fn.index(block)

    def test_skewed_ways_have_different_matrices(self):
        fn = IPolyIndexing(128, ways=2, skewed=True, address_bits=19)
        m0 = derive_xor_matrix(fn, way=0)
        m1 = derive_xor_matrix(fn, way=1)
        assert m0.rows != m1.rows

    def test_nonlinear_function_rejected(self):
        with pytest.raises(ValueError):
            derive_xor_matrix(PrimeModuloIndexing(128))

    def test_is_linear_helper(self):
        fn = IPolyIndexing(64, address_bits=14)
        matrix = derive_xor_matrix(fn)
        assert is_linear(fn, matrix)


class TestCost:
    def test_cost_counts(self):
        fn = XorFoldIndexing(128, skewed=False)
        cost = derive_xor_matrix(fn).cost()
        assert cost.index_bits == 7
        assert cost.max_fan_in == 2
        assert cost.two_input_gates == 7       # one 2-input gate per bit
        assert cost.tree_depth_gates == 1

    def test_paper_claim_7bit_index_19_address_bits_fan_in_at_most_5(self):
        """Section 3.4: "the number of inputs is never higher than 5"."""
        poly = choose_low_fanin_polynomial(7, 19)
        fn = IPolyIndexing(128, address_bits=19, polynomials=[poly])
        cost = derive_xor_matrix(fn).cost()
        assert cost.max_fan_in <= 5

    def test_paper_claim_7bit_index_13_unmapped_bits(self):
        """Section 3.1 option 2: 13 unmapped bits hashed to 7 index bits."""
        poly = choose_low_fanin_polynomial(7, 13)
        fn = IPolyIndexing(128, address_bits=13, polynomials=[poly])
        cost = derive_xor_matrix(fn).cost()
        assert cost.max_fan_in <= 4

    def test_gate_count_scales_with_index_bits(self):
        fn = IPolyIndexing(256, address_bits=19)
        cost = derive_xor_matrix(fn).cost()
        # One XOR tree per index bit.
        assert cost.index_bits == 8
        assert cost.two_input_gates >= 8

    def test_pretty_output_mentions_every_bit(self):
        fn = IPolyIndexing(64, address_bits=14)
        text = derive_xor_matrix(fn).pretty()
        for i in range(6):
            assert f"index[{i}]" in text


class TestLowFaninSearch:
    def test_result_is_right_degree(self):
        from repro.core.gf2 import degree, is_irreducible
        poly = choose_low_fanin_polynomial(6, 14)
        assert degree(poly) == 6
        assert is_irreducible(poly)

    def test_no_worse_than_default(self):
        from repro.core.polynomials import default_polynomial
        chosen = choose_low_fanin_polynomial(7, 19)
        default_cost = derive_xor_matrix(
            IPolyIndexing(128, address_bits=19,
                          polynomials=[default_polynomial(7)])).cost()
        chosen_cost = derive_xor_matrix(
            IPolyIndexing(128, address_bits=19, polynomials=[chosen])).cost()
        assert chosen_cost.max_fan_in <= default_cost.max_fan_in

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            choose_low_fanin_polynomial(0, 10)
        with pytest.raises(ValueError):
            choose_low_fanin_polynomial(8, 4)
