"""Tests for the out-of-order processor model and its workload generator."""

import pytest

from repro.cpu.isa import Instruction, OpClass
from repro.cpu.processor import OutOfOrderProcessor, ProcessorConfig
from repro.cpu.program import Program
from repro.cpu.workloads import INSTRUCTION_MIXES, build_program, program_names


def alu(pc, dest, srcs=()):
    return Instruction(pc=pc, op=OpClass.INT_ALU, dest=dest, srcs=tuple(srcs))


def mixed_stream(count):
    """Independent instructions spread over several functional units.

    The Table 1 machine has a single simple-integer ALU, so a purely integer
    stream can never exceed one instruction per cycle; a realistic ILP test
    must mix unit classes the way real code does.
    """
    instructions = []
    for i in range(count):
        kind = i % 4
        if kind == 0:
            instructions.append(alu(pc=4 * i, dest=4 + (i % 14)))
        elif kind == 1:
            instructions.append(Instruction(pc=4 * i, op=OpClass.FP_ADD,
                                            dest=36 + (i % 14)))
        elif kind == 2:
            instructions.append(Instruction(pc=4 * i, op=OpClass.FP_MUL,
                                            dest=50 + (i % 10)))
        else:
            instructions.append(Instruction(pc=4 * i, op=OpClass.LOAD,
                                            dest=18 + (i % 10), address=0))
    return instructions


def run_program(instructions, **config_kwargs):
    processor = OutOfOrderProcessor(ProcessorConfig(**config_kwargs))
    program = Program.from_list("test", instructions)
    return processor.run(program)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ProcessorConfig()
        assert cfg.fetch_width == 4
        assert cfg.rob_entries == 32
        assert cfg.int_physical_registers == 64
        assert cfg.fp_physical_registers == 64
        assert cfg.branch_predictor_entries == 2048
        assert cfg.cache_hit_time == 2
        assert cfg.cache_miss_penalty == 20
        assert cfg.mshr_entries == 8

    def test_build_cache_uses_scheme(self):
        cfg = ProcessorConfig(index_scheme="a2-Hp-Sk")
        assert cfg.build_cache().index_function.name == "a2-Hp-Sk"

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(fetch_width=0)
        with pytest.raises(ValueError):
            ProcessorConfig(int_physical_registers=16)

    @pytest.mark.parametrize("overrides", [
        dict(cache_block_size=0),
        dict(cache_block_size=24),              # not a power of two
        dict(cache_ways=0),
        dict(cache_size_bytes=48),              # smaller than block * ways
        dict(cache_size_bytes=8 * 1024 + 32),   # not divisible by block * ways
        dict(cache_size_bytes=6 * 1024),        # num_sets not a power of two
        dict(branch_predictor_entries=0),
        dict(branch_predictor_entries=1000),    # not a power of two
        dict(address_predictor_entries=0),
        dict(address_predictor_entries=3),
        dict(cache_hit_time=0),                 # surfaced from DataCacheTiming
        dict(mshr_entries=0),
    ])
    def test_geometry_and_timing_validation(self, overrides):
        with pytest.raises(ValueError):
            ProcessorConfig(**overrides)

    def test_negative_max_instructions_rejected(self):
        processor = OutOfOrderProcessor(ProcessorConfig())
        program = Program.from_list("tiny", [alu(pc=0, dest=4)])
        with pytest.raises(ValueError):
            processor.run(program, max_instructions=-1)

    def test_negative_length_hint_rejected(self):
        with pytest.raises(ValueError):
            Program("bad", lambda: [], length_hint=-1)


class TestBasicPipeline:
    def test_independent_instructions_reach_high_ipc(self):
        instructions = mixed_stream(400)
        result = run_program(instructions)
        assert result.instructions == 400
        assert result.ipc > 2.0        # 4-wide core, no dependences

    def test_single_alu_caps_integer_throughput(self):
        """Table 1 has one simple-integer unit, so pure ALU code peaks at 1 IPC."""
        instructions = [alu(pc=4 * i, dest=(i % 28) + 4) for i in range(400)]
        result = run_program(instructions)
        assert 0.9 < result.ipc <= 1.05

    def test_dependence_chain_limits_ipc_to_one(self):
        instructions = [alu(pc=4 * i, dest=1, srcs=(1,)) for i in range(400)]
        result = run_program(instructions)
        assert result.ipc <= 1.05

    def test_long_latency_chain_is_slower(self):
        divs = [Instruction(pc=4 * i, op=OpClass.INT_DIV, dest=1, srcs=(1,))
                for i in range(40)]
        result = run_program(divs)
        assert result.ipc < 0.05       # 67-cycle serial divides

    def test_ipc_zero_for_empty_program(self):
        result = run_program([])
        assert result.instructions == 0
        assert result.ipc == 0.0


class TestMemoryBehaviour:
    def test_load_misses_lower_ipc(self):
        # Loads striding by one block: every access a new line (all miss).
        missing = [Instruction(pc=8 * i, op=OpClass.LOAD, dest=4 + (i % 28),
                               address=i * 32) for i in range(300)]
        # Loads repeatedly hitting one line.
        hitting = [Instruction(pc=8 * i, op=OpClass.LOAD, dest=4 + (i % 28),
                               address=0) for i in range(300)]
        slow = run_program(missing)
        fast = run_program(hitting)
        assert slow.load_miss_ratio > 0.9
        assert fast.load_miss_ratio < 0.1
        assert fast.ipc > slow.ipc

    def test_store_then_load_forwards(self):
        instructions = []
        for i in range(50):
            instructions.append(Instruction(pc=8 * i, op=OpClass.STORE,
                                            srcs=(1,), address=0x1000))
            instructions.append(Instruction(pc=8 * i + 4, op=OpClass.LOAD,
                                            dest=5, srcs=(), address=0x1000))
        result = run_program(instructions)
        assert result.forwarded_loads > 0

    def test_forwarded_loads_never_reach_the_recorded_stream(self):
        """A recording dcache sees stores at commit but not forwarded loads —
        the invariant the fuzz harness's batch replay rests on."""
        from repro.cpu.dcache import DataCacheModel

        instructions = []
        for i in range(20):
            instructions.append(Instruction(pc=8 * i, op=OpClass.STORE,
                                            srcs=(1,), address=0x1000))
            instructions.append(Instruction(pc=8 * i + 4, op=OpClass.LOAD,
                                            dest=5, srcs=(), address=0x1000))
        config = ProcessorConfig()
        dcache = DataCacheModel(config.build_cache(), config.cache_timing(),
                                record_stream=True)
        processor = OutOfOrderProcessor(config, cache_model=dcache)
        result = processor.run(Program.from_list("forwarding", instructions))
        addresses, is_store = dcache.recorded_stream()
        assert len(addresses) == len(is_store)
        recorded_loads = is_store.count(False)
        assert recorded_loads == result.loads - result.forwarded_loads
        assert is_store.count(True) == result.stores

    def test_xor_in_critical_path_slows_loads(self):
        loads = [Instruction(pc=8 * i, op=OpClass.LOAD, dest=4 + (i % 20),
                             srcs=(4 + ((i - 1) % 20),) if i else (),
                             address=(i % 8) * 32) for i in range(400)]
        base = run_program(loads)
        slowed = run_program(loads, xor_in_critical_path=True)
        assert slowed.ipc < base.ipc

    def test_address_prediction_recovers_xor_penalty(self):
        # Strided loads are perfectly predictable.
        loads = []
        for i in range(400):
            loads.append(Instruction(pc=0x100, op=OpClass.LOAD,
                                     dest=4 + (i % 20),
                                     srcs=(4 + ((i - 1) % 20),) if i else (),
                                     address=i * 8))
        slowed = run_program(loads, xor_in_critical_path=True)
        predicted = run_program(loads, xor_in_critical_path=True,
                                address_prediction=True)
        assert predicted.ipc > slowed.ipc
        assert predicted.address_prediction_coverage > 0.5
        assert predicted.address_prediction_accuracy > 0.9


class TestBranches:
    def test_mispredictions_reduce_ipc(self):
        predictable = []
        unpredictable = []
        for i in range(600):
            filler = alu(pc=0x800 + 4 * i, dest=4 + (i % 20))
            predictable.append(filler)
            unpredictable.append(filler)
            predictable.append(Instruction(pc=0x400, op=OpClass.BRANCH,
                                           srcs=(1,), taken=True))
            unpredictable.append(Instruction(pc=0x404, op=OpClass.BRANCH,
                                             srcs=(1,), taken=bool(i % 2)))
        good = run_program(predictable)
        bad = run_program(unpredictable)
        assert good.branch_misprediction_ratio < 0.05
        assert bad.branch_misprediction_ratio > 0.3
        assert good.ipc > bad.ipc

    def test_branch_counts(self):
        instructions = [Instruction(pc=4, op=OpClass.BRANCH, srcs=(), taken=True)
                        for _ in range(10)]
        result = run_program(instructions)
        assert result.branches == 10


class TestStructuralLimits:
    def test_small_rob_reduces_ipc_under_misses(self):
        loads = [Instruction(pc=8 * i, op=OpClass.LOAD, dest=4 + (i % 28),
                             address=i * 4096) for i in range(300)]
        big = run_program(loads, rob_entries=64)
        small = run_program(loads, rob_entries=4)
        assert small.ipc < big.ipc

    def test_narrow_fetch_limits_ipc(self):
        instructions = mixed_stream(400)
        wide = run_program(instructions, fetch_width=4, commit_width=4)
        narrow = run_program(instructions, fetch_width=1, commit_width=1)
        assert narrow.ipc <= 1.05
        assert wide.ipc > narrow.ipc


class TestSyntheticPrograms:
    def test_catalogue_matches_workloads(self):
        assert set(program_names()) == set(INSTRUCTION_MIXES)
        assert len(program_names()) == 18

    def test_program_is_replayable_and_deterministic(self):
        program = build_program("gcc", length=500)
        first = [(i.pc, i.op, i.address) for i in program.instructions()]
        second = [(i.pc, i.op, i.address) for i in program.instructions()]
        assert first == second
        assert len(first) == 500

    def test_mix_contains_expected_classes(self):
        program = build_program("swim", length=2000)
        ops = {i.op for i in program.instructions()}
        assert OpClass.LOAD in ops
        assert OpClass.STORE in ops
        assert OpClass.BRANCH in ops
        assert OpClass.FP_ADD in ops or OpClass.FP_MUL in ops

    def test_integer_programs_have_no_fp(self):
        program = build_program("gcc", length=2000)
        assert not any(i.op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
                                OpClass.FP_SQRT)
                       for i in program.instructions())

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError):
            build_program("quake", length=100)

    def test_end_to_end_ipoly_helps_swim(self):
        """Integration: the paper's core result on one bad program."""
        conventional = OutOfOrderProcessor(ProcessorConfig()).run(
            build_program("swim", length=6000))
        ipoly = OutOfOrderProcessor(
            ProcessorConfig(index_scheme="a2-Hp-Sk")).run(
            build_program("swim", length=6000))
        assert ipoly.load_miss_ratio < conventional.load_miss_ratio / 2
        assert ipoly.ipc > conventional.ipc * 1.1
