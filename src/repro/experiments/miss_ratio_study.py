"""Experiment E-MR: trace-level miss-ratio comparison across organisations.

Section 2.1 summarises the earlier ICS'97 study [10]: on Spec95, an 8 KB
two-way set-associative cache has an average miss ratio of 13.84%, the I-Poly
cache of the same size and associativity reduces it to 7.14%, and a
fully-associative cache of the same capacity achieves 6.80%.  The point is
that I-Poly indexing recovers almost all of the benefit of full associativity
at two-way cost.

This driver replays the synthetic workload suite through a configurable set
of cache organisations (conventional, skewed-XOR, I-Poly, prime-modulus,
fully-associative, victim and column-associative are all available) and
reports per-program and suite-average miss ratios, so the ordering
``conventional > I-Poly >= fully-associative`` — and the near-equality of the
last two — can be checked.

The study runs on either simulation engine: ``engine="reference"`` replays
the generator trace through every scalar cache model; ``engine="vectorized"``
materialises each program's trace *once* into NumPy arrays and drives the
batch engine for every organisation — set-associative in all four index
families, fully-associative, column-associative and (since the
:class:`~repro.engine.batch_cache.BatchVictimCache` kernel landed) the victim
cache, so no organisation falls back to scalar replay.  Both paths produce
identical miss ratios.  ``replacement`` selects the replacement policy the
set-associative, fully-associative and victim organisations use (the
column-associative organisation has no replacement freedom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.metrics import arithmetic_mean
from ..analysis.reporting import TableBuilder
from ..cache.column_assoc import ColumnAssociativeCache
from ..cache.fully_assoc import FullyAssociativeCache
from ..cache.victim import VictimCache
from ..core.index import SingleSetIndexing, make_index_function
from ..engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    AddressBatch,
    BatchColumnAssociativeCache,
    BatchSetAssociativeCache,
    BatchVictimCache,
    MultiConfigPlan,
    TaskFailure,
    check_engine,
    check_profile_mode,
    run_sweep,
)
from ..trace.batching import cached_workload_arrays
from ..trace.workloads import build_trace, workload_names
from .config import PAPER_HASH_BITS, PAPER_L1_8KB, CacheGeometry, build_cache
from .trace_input import load_miss_ratios_percent, stream_trace, trace_label

__all__ = [
    "MissRatioStudyResult",
    "default_organisations",
    "default_batch_organisations",
    "run_miss_ratio_study",
]


@dataclass
class MissRatioStudyResult:
    """Per-program miss ratios (percent) for each cache organisation."""

    accesses_per_program: int
    miss_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Programs that exhausted their retries under ``on_error="collect"``;
    #: they are excluded from the table and the averages.
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def programs(self) -> List[str]:
        """Programs replayed."""
        return list(self.miss_ratios)

    @property
    def organisations(self) -> List[str]:
        """Cache organisations compared."""
        if not self.miss_ratios:
            return []
        return list(next(iter(self.miss_ratios.values())))

    def average(self, organisation: str) -> float:
        """Suite-average miss ratio (percent) of one organisation."""
        return arithmetic_mean([self.miss_ratios[p][organisation]
                                for p in self.programs])

    def averages(self) -> Dict[str, float]:
        """Suite-average miss ratio per organisation."""
        return {org: self.average(org) for org in self.organisations}

    def table(self) -> TableBuilder:
        """Per-program table with an average row."""
        table = TableBuilder(self.organisations, row_label="program")
        for program in self.programs:
            table.add_row(program, self.miss_ratios[program])
        table.add_row("Average", self.averages())
        return table

    def render(self) -> str:
        """Render as text."""
        return self.table().render(title="Load miss ratio (%) by cache organisation")


#: The organisations of the Section 2.1 comparison, as (label, kind, params)
#: rows consumed by *both* engines' factory tables — one source of truth, so
#: the reference and vectorized studies can never drift apart structurally.
_ORGANISATION_SPECS = (
    ("conventional-2way", "set-assoc", {"scheme": "a2"}),
    ("skewed-xor-2way", "set-assoc", {"scheme": "a2-Hx-Sk"}),
    ("ipoly-2way", "set-assoc", {"scheme": "a2-Hp"}),
    ("ipoly-skewed-2way", "set-assoc", {"scheme": "a2-Hp-Sk"}),
    ("fully-associative", "fully-assoc", {}),
    ("victim-direct+8", "victim", {"ways": 1, "victim_entries": 8}),
    ("column-assoc-ipoly", "column-assoc", {}),
)


def _scalar_factory(kind: str, params: Dict, geometry: CacheGeometry,
                    replacement: Optional[str] = None) -> Callable:
    if kind == "set-assoc":
        return lambda: build_cache(geometry, params["scheme"],
                                   address_bits=PAPER_HASH_BITS,
                                   replacement=replacement)
    if kind == "fully-assoc":
        return lambda: FullyAssociativeCache(geometry.size_bytes,
                                             geometry.block_size,
                                             replacement=replacement)
    if kind == "victim":
        return lambda: VictimCache(geometry.size_bytes, geometry.block_size,
                                   ways=params["ways"],
                                   victim_entries=params["victim_entries"],
                                   replacement=replacement)
    if kind == "column-assoc":
        return lambda: ColumnAssociativeCache(
            geometry.size_bytes, geometry.block_size,
            address_bits=PAPER_HASH_BITS, replacement=replacement)
    raise ValueError(f"unknown organisation kind {kind!r}")  # pragma: no cover


def _batch_factory(kind: str, params: Dict, geometry: CacheGeometry,
                   replacement: Optional[str] = None) -> Callable:
    if kind == "set-assoc":
        def make() -> BatchSetAssociativeCache:
            index_fn = make_index_function(params["scheme"],
                                           num_sets=geometry.num_sets,
                                           ways=geometry.ways,
                                           address_bits=PAPER_HASH_BITS)
            return BatchSetAssociativeCache(
                size_bytes=geometry.size_bytes,
                block_size=geometry.block_size,
                ways=geometry.ways, index_function=index_fn,
                replacement=replacement)
        return make
    if kind == "fully-assoc":
        return lambda: BatchSetAssociativeCache(
            geometry.size_bytes, geometry.block_size,
            ways=geometry.size_bytes // geometry.block_size,
            index_function=SingleSetIndexing(), replacement=replacement)
    if kind == "victim":
        return lambda: BatchVictimCache(
            geometry.size_bytes, geometry.block_size,
            ways=params["ways"], victim_entries=params["victim_entries"],
            replacement=replacement)
    if kind == "column-assoc":
        return lambda: BatchColumnAssociativeCache(
            geometry.size_bytes, geometry.block_size,
            address_bits=PAPER_HASH_BITS, replacement=replacement)
    raise ValueError(f"unknown organisation kind {kind!r}")  # pragma: no cover


def default_organisations(geometry: CacheGeometry = PAPER_L1_8KB,
                          replacement: Optional[str] = None) -> Dict[str, Callable]:
    """Factories for the organisations compared in the Section 2.1 summary.

    Returns a mapping from label to a zero-argument callable building a fresh
    cache.  Callers can extend the mapping with victim or column-associative
    organisations (both available in :mod:`repro.cache`) for wider studies.
    """
    return {label: _scalar_factory(kind, params, geometry, replacement)
            for label, kind, params in _ORGANISATION_SPECS}


def default_batch_organisations(
        geometry: CacheGeometry = PAPER_L1_8KB,
        replacement: Optional[str] = None) -> Dict[str, Callable]:
    """Batch-engine counterparts of :func:`default_organisations`.

    Built from the same :data:`_ORGANISATION_SPECS` rows, so labels and
    parameters can never diverge between engines.  Every organisation —
    including the victim cache — now has a native batch kernel.
    """
    return {label: _batch_factory(kind, params, geometry, replacement)
            for label, kind, params in _ORGANISATION_SPECS}


def _replay_batch(cache, batch: AddressBatch) -> None:
    """Drive a cache with a batch: native `.run` or scalar replay fallback."""
    if hasattr(cache, "run"):
        cache.run(batch)
        return
    access = cache.access
    for address, is_write in zip(batch.addresses.tolist(),
                                 batch.is_write.tolist()):
        access(address, is_write=is_write)


def _program_miss_ratios(name: str, accesses: int, seed: int, engine: str,
                         organisation_map: Mapping[str, Callable],
                         profile: str = "auto",
                         sample_rate: float = 0.01,
                         sample_size: Optional[int] = None,
                         profile_seed: int = 0) -> Dict[str, float]:
    """Load miss ratio (percent) of every organisation for one program."""
    per_org: Dict[str, float] = {}
    if engine == ENGINE_VECTORIZED:
        # Sweep-wide memoisation: the materialised arrays come from the
        # process-global trace cache with stable identity, so the batch
        # engine also shares the derived block-number / set-index arrays
        # across the organisations below (and across study runs).  The plan
        # additionally routes profilable conventional-LRU rows through one
        # shared stack-distance profile when that wins (or when forced).
        batch = AddressBatch.from_arrays(
            *cached_workload_arrays(name, length=accesses, seed=seed))
        plan = MultiConfigPlan(profile=profile, sample_rate=sample_rate,
                               sample_size=sample_size,
                               profile_seed=profile_seed)
        for label, factory in organisation_map.items():
            plan.add(label, batch, factory, runner=_replay_batch)
        counts = plan.run()
        for label in organisation_map:
            per_org[label] = 100.0 * counts[label].load_miss_ratio
    else:
        for label, factory in organisation_map.items():
            cache = factory()
            for access in build_trace(name, length=accesses, seed=seed):
                cache.access(access.address, is_write=access.is_write)
            per_org[label] = 100.0 * cache.stats.load_miss_ratio
    return per_org


#: One per-program work item of the parallel study: everything a worker
#: process needs to rebuild the default organisations and replay the trace.
_StudyTask = Tuple[str, int, int, str, Optional[str], str,
                   Tuple[float, Optional[int], int]]


def _study_program_task(task: _StudyTask) -> Dict[str, float]:
    """Module-level sweep worker (must be picklable for process pools)."""
    name, accesses, seed, engine, replacement, profile, sampling = task
    sample_rate, sample_size, profile_seed = sampling
    if engine == ENGINE_VECTORIZED:
        organisation_map = default_batch_organisations(replacement=replacement)
    else:
        organisation_map = default_organisations(replacement=replacement)
    return _program_miss_ratios(name, accesses, seed, engine,
                                organisation_map, profile=profile,
                                sample_rate=sample_rate,
                                sample_size=sample_size,
                                profile_seed=profile_seed)


def run_miss_ratio_study(programs: Optional[Sequence[str]] = None,
                         accesses: int = 40_000,
                         organisations: Optional[Mapping[str, Callable]] = None,
                         seed: int = 12345,
                         engine: str = ENGINE_REFERENCE,
                         replacement: Optional[str] = None,
                         workers: Optional[int] = None,
                         chunksize: Optional[int] = None,
                         profile: str = "auto",
                         sample_rate: float = 0.01,
                         sample_size: Optional[int] = None,
                         profile_seed: int = 0,
                         timeout: Optional[float] = None,
                         retries: int = 0,
                         on_error: str = "raise",
                         resume: Optional[str] = None,
                         trace: Optional[str] = None,
                         trace_chunk: int = 1 << 20) -> MissRatioStudyResult:
    """Replay the workload suite through every organisation and collect miss ratios.

    ``engine="vectorized"`` materialises each program's trace once and runs
    the batch engine natively for every default organisation (victim cache
    included); a caller-supplied ``organisations`` mapping is honoured on
    both engines — batch caches expose ``run``, anything else is replayed
    access-at-a-time.  ``replacement`` picks the replacement policy of the
    default organisations (``None`` means the paper's LRU).

    ``workers`` fans the per-program tasks across a process pool
    (:func:`repro.engine.sweep.run_sweep`; ``chunksize`` groups programs per
    dispatch so a worker reuses its materialised traces).  A caller-supplied
    ``organisations`` mapping is not generally picklable, so it always runs
    serially.  ``profile`` selects the multi-configuration profiling policy
    of the vectorized path (``auto``/``always``/``never`` — bit-exact in
    each of those — or ``"sampled"``, which prices the conventional LRU
    rows approximately through the SHARDS profiles of
    :mod:`repro.engine.shards` at ``sample_rate``/``sample_size``/
    ``profile_seed``).

    ``timeout`` (seconds per program), ``retries``, ``on_error`` and
    ``resume`` (sweep-journal path, appended to and resumed from) are
    forwarded to :func:`repro.engine.sweep.run_sweep`; under
    ``on_error="collect"`` a failed program lands in ``result.failures``
    instead of the table.

    ``trace`` replaces the synthetic suite with one recorded on-disk trace
    (any format :mod:`repro.trace.stream` reads — packed v2, optionally
    compressed, v1 binary/text, or Dinero ``.din``): the study then has a
    single row, labelled with the trace's file name.  On the vectorized
    engine the trace streams through every organisation in
    ``trace_chunk``-access batches, so memory stays bounded regardless of
    trace length, with counters bit-identical to an in-memory replay.
    """
    engine = check_engine(engine)
    profile = check_profile_mode(profile)
    if trace is not None:
        caches = {
            label: factory() for label, factory in
            (organisations if organisations is not None else
             (default_batch_organisations(replacement=replacement)
              if engine == ENGINE_VECTORIZED else
              default_organisations(replacement=replacement))).items()}
        total = stream_trace(caches, trace, engine, trace_chunk)
        result = MissRatioStudyResult(accesses_per_program=total)
        result.miss_ratios[trace_label(trace)] = load_miss_ratios_percent(caches)
        return result
    if accesses < 1_000:
        raise ValueError("accesses should be at least 1000 for stable ratios")
    program_list = list(programs) if programs is not None else workload_names()

    result = MissRatioStudyResult(accesses_per_program=accesses)
    if organisations is not None:
        organisation_map = dict(organisations)
        for name in program_list:
            result.miss_ratios[name] = _program_miss_ratios(
                name, accesses, seed, engine, organisation_map,
                profile=profile, sample_rate=sample_rate,
                sample_size=sample_size, profile_seed=profile_seed)
        return result

    tasks: List[_StudyTask] = [
        (name, accesses, seed, engine, replacement, profile,
         (sample_rate, sample_size, profile_seed))
        for name in program_list
    ]
    per_program = run_sweep(_study_program_task, tasks, workers=workers,
                            chunksize=chunksize, timeout=timeout,
                            retries=retries, on_error=on_error,
                            journal=resume, resume=resume)
    for name, per_org in zip(program_list, per_program):
        if isinstance(per_org, TaskFailure):
            result.failures.append(per_org)
            continue
        result.miss_ratios[name] = per_org
    return result
