"""E-CP: Section 3 / 3.4 — XOR-tree cost and carry-lookahead timing.

Paper claims checked:

* the per-bit XOR fan-in of the experiment's 7-bit index functions never
  exceeds 5 (and 13-unmapped-bit configurations need only 3-4 inputs);
* in a binary CLA over 64-bit addresses, the 19 bits the hash consumes are
  ready after about 9 block delays versus about 11 for the full addition, so
  the XOR stage fits in the slack.
"""

import pytest

from repro.experiments.critical_path import run_critical_path_study


@pytest.mark.benchmark(group="critical-path")
def test_hardware_cost_and_cla_slack(benchmark):
    result = benchmark.pedantic(
        lambda: run_critical_path_study(index_bit_widths=(7, 8),
                                        address_bits=19,
                                        hash_bit_widths=(13, 19)),
        rounds=1, iterations=1)

    print()
    print(result.render())

    seven_bit = result.costs["7-bit index / 19 address bits"]
    assert seven_bit.max_fan_in <= 5
    assert seven_bit.index_bits == 7
    # The whole index needs only a handful of 2-input gates (order tens).
    assert seven_bit.two_input_gates < 40

    assert result.cla_delays[19]["low_bits_delay"] == 9
    assert result.cla_delays[19]["full_add_delay"] == 11
    assert result.cla_delays[19]["slack"] >= 1
    # Fewer hash bits are available even earlier.
    assert result.cla_delays[13]["low_bits_delay"] <= 9


@pytest.mark.benchmark(group="critical-path")
def test_index_function_evaluation_cost(benchmark):
    """Micro-benchmark: raw cost of evaluating the I-Poly hash in Python."""
    from repro.core.index import IPolyIndexing

    fn = IPolyIndexing(128, ways=2, skewed=True, address_bits=19)

    def evaluate():
        total = 0
        for block in range(0, 20_000):
            total += fn.index(block, block & 1)
        return total

    total = benchmark(evaluate)
    assert total > 0
