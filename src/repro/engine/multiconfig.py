"""One-pass multi-configuration LRU profiling (stack-distance simulation).

Every other kernel in this package simulates **one** cache configuration per
trace pass.  A sweep over a family of conventional LRU caches — the
capacity/associativity grids of the classic miss-ratio studies — therefore
costs O(configs x N).  This module implements the classic single-pass
alternatives:

* **Mattson stack-distance profiling** (:class:`StackDistanceProfile`): one
  pass over the block-number stream yields the full reuse-distance
  histogram, from which the miss ratio of a fully-associative LRU cache of
  *every* capacity falls out.  Distances are counted with a Fenwick (binary
  indexed) tree over access positions, O(N log N) total, after the
  previous-occurrence array is derived with vectorized NumPy sorting.

* **All-associativity (Hill & Smith style) set profiling**
  (:class:`MultiConfigLRUProfile`): bit-selection set mappings are nested —
  a cache with ``2^k`` sets partitions the sets of one with ``2^(k+1)`` —
  so one capped per-set LRU stack pass per *set count* serves every
  associativity at that set count at once.  A (num_sets x ways) grid for a
  fixed block size costs one pass per distinct ``num_sets`` instead of one
  per configuration.

* **Single-pass FIFO grids** (:class:`MultiConfigFIFOProfile`,
  :class:`MultiCapacityFIFOProfile`): FIFO is not a stack algorithm
  (Belady's anomaly), but it is *hit-transparent* — hits never mutate FIFO
  state — so after one vectorized occurrence-list pass each configuration
  is priced by an event-driven replay that touches only its misses, exact
  to the per-configuration kernels at a cost proportional to the miss
  count.

* **Sweep partitioning** (:class:`MultiConfigPlan`): experiment sweeps hand
  their task list to a plan, which splits it into *profilable*
  configurations (conventional bit-selection placement, LRU or FIFO
  replacement, no 3C classifier, cold cache, and no write-policy
  divergence — see below) served out of shared profiles, and everything
  else (skewed, I-Poly, victim, column, other policies), which keeps its
  PR 3/4 kernels untouched.  ``profile="sampled"`` swaps the exact LRU
  profile for the approximate SHARDS one of :mod:`repro.engine.shards`.

Write-policy divergence
-----------------------

A single profile can only serve every configuration if the stack update is
configuration-independent.  Loads (and, under write-back/write-allocate,
stores) always move the accessed block to MRU — the uniform Mattson case.
Under the paper's write-through/no-write-allocate policy a store *hit*
refreshes recency while a store *miss* changes nothing, so the update seems
to depend on the (configuration-dependent) hit outcome.  It does not: a
block's last-touch time is identical in every cache that holds it (a block
re-enters any cache only through an allocating access, and from then on
every touch hits every holder), so the family remains a *priority* stack
algorithm in Mattson's sense, with last-touch time as the priority.  The
store-aware kernel maintains exactly that priority stack; traces without
stores use the plain move-to-front fast path.  What is **not** profilable
is the 3C classifier (it needs per-access hit context in trace order) and
any non-LRU policy — those keep their per-configuration kernels.

Profiles are memoised process-globally per (trace identity, block size, set
count, depth cap, store mode) with the same identity-anchor safety rules as
:mod:`repro.engine.memo`, so every reader of a sweep group shares one pass.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cache.set_assoc import WritePolicy
from ..core.memo_util import BoundedMemo
from .batch import AddressBatch
from .batch_cache import BatchSetAssociativeCache
from .memo import cached_block_numbers

__all__ = [
    "PROFILE_MODES",
    "PROFILE_AUTO_CAP_LIMIT",
    "check_profile_mode",
    "ProfileCounts",
    "StackDistanceProfile",
    "StackDistanceBuilder",
    "MultiConfigLRUProfile",
    "MultiConfigProfileBuilder",
    "MultiCapacityFIFOProfile",
    "MultiConfigFIFOProfile",
    "MultiConfigFIFOBuilder",
    "MultiConfigPlan",
    "run_lru_grid",
    "profile_cache_info",
    "profile_cache_clear",
]

#: Valid values of every driver's ``profile`` parameter: ``"auto"`` profiles
#: a group only when it is expected to win (two or more configurations after
#: setting aside any too-deep member, which stays on its own kernel),
#: ``"always"`` forces the profiler onto every profilable task, ``"never"``
#: keeps every task on its per-configuration kernel, and ``"sampled"``
#: prices LRU groups approximately through the SHARDS profiles of
#: :mod:`repro.engine.shards` (FIFO groups stay on the exact single-pass
#: profiler — its cost already scales with misses, not accesses).
PROFILE_MODES = ("auto", "always", "never", "sampled")

#: Deepest per-set stack the ``"auto"`` policy will profile.  Beyond this the
#: per-access walk (which is linear in the depth cap on misses) can lose to
#: a handful of per-configuration kernel runs — e.g. the 256-deep
#: fully-associative organisation of the miss-ratio study — so such levels
#: only profile under ``profile="always"``.
PROFILE_AUTO_CAP_LIMIT = 64

#: Smallest group the ``"auto"`` policy profiles: a single configuration is
#: never cheaper through a profile than through its own kernel.
_AUTO_MIN_GROUP = 2


def check_profile_mode(profile: str) -> str:
    """Validate a ``profile`` parameter value, returning it normalised."""
    label = str(profile).strip().lower()
    if label not in PROFILE_MODES:
        raise ValueError(
            f"unknown profile mode {profile!r}; expected one of {PROFILE_MODES}")
    return label


# --------------------------------------------------------------------- #
# readout counts
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ProfileCounts:
    """Access/miss counters of one configuration, engine-agnostic.

    Field names and ratio formulas mirror :class:`~repro.cache.stats.CacheStats`
    exactly, so a ratio read out of a profile is the *same IEEE double* as
    the one computed from a kernel (or scalar) run of the configuration —
    the equality the differential suite asserts is bit-exact, not approximate.
    """

    loads: int
    stores: int
    load_misses: int
    store_misses: int

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        """Total number of misses (loads + stores)."""
        return self.load_misses + self.store_misses

    @property
    def hits(self) -> int:
        """Total number of hits."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Overall miss ratio; 0.0 when there are no accesses."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def load_miss_ratio(self) -> float:
        """Load miss ratio — the metric the paper's tables report."""
        return self.load_misses / self.loads if self.loads else 0.0

    @classmethod
    def from_stats(cls, stats) -> "ProfileCounts":
        """Extract the profile-comparable counters from a ``CacheStats``."""
        return cls(loads=stats.loads, stores=stats.stores,
                   load_misses=stats.load_misses,
                   store_misses=stats.store_misses)


# --------------------------------------------------------------------- #
# part (a): fully-associative reuse-distance histogram (Fenwick tree)
# --------------------------------------------------------------------- #

class StackDistanceProfile:
    """Mattson reuse-distance histogram of a block-number stream.

    ``distances[i]`` is the number of *distinct* blocks referenced between
    access ``i`` and the previous access to the same block (``-1`` for a
    first touch).  A fully-associative LRU cache of ``C`` blocks hits access
    ``i`` iff ``0 <= distances[i] < C``, so one pass prices **every**
    capacity.

    The update is uniform (every access moves its block to MRU), which makes
    the readout exact for load-only traces under any write policy and for
    write-back/write-allocate caches with stores; for the store-touch
    subtlety of write-through caches use :class:`MultiConfigLRUProfile`.

    Distances are counted offline: the previous-occurrence array comes from
    one stable NumPy argsort, then a Fenwick tree over access positions
    (one live marker per currently-last occurrence) answers each "distinct
    blocks in window" query in O(log N) — O(N log N) total, independent of
    the footprint, where the naive stack walk is O(N * M).
    """

    def __init__(self, distances: np.ndarray) -> None:
        distances = np.asarray(distances, dtype=np.int64)
        if distances.ndim != 1:
            raise ValueError("distances must be one-dimensional")
        self._distances = distances
        reused = distances[distances >= 0]
        self._histogram = (np.bincount(reused) if reused.size
                           else np.zeros(0, dtype=np.int64)).astype(np.int64)
        self._cold = int(distances.shape[0] - reused.size)
        #: hits_at_most[c] = accesses with distance < c + 1.
        self._cumulative = np.cumsum(self._histogram, dtype=np.int64)

    # -- construction -------------------------------------------------- #

    @classmethod
    def from_blocks(cls, blocks: np.ndarray) -> "StackDistanceProfile":
        """Profile a raw block-number array (one entry per access)."""
        blocks = np.asarray(blocks, dtype=np.int64)
        n = blocks.shape[0]
        if n == 0:
            return cls(np.empty(0, dtype=np.int64))
        # Previous occurrence of each access's block, fully vectorized: a
        # stable sort by block groups equal blocks in position order, so
        # each group's consecutive pairs are (previous, current).
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        same = np.empty(n, dtype=bool)
        same[0] = False
        np.equal(sorted_blocks[1:], sorted_blocks[:-1], out=same[1:])
        prev = np.full(n, -1, dtype=np.int64)
        repeat = same[1:]
        prev[order[1:][repeat]] = order[:-1][repeat]

        # Fenwick tree over 1-based positions; position j+1 holds a marker
        # while access j is the latest occurrence of its block.  The count
        # of markers strictly between the previous occurrence and the
        # current access is exactly the number of distinct blocks touched
        # in between.
        tree = [0] * (n + 1)
        distances = [0] * n
        prev_l = prev.tolist()
        for i, p in enumerate(prev_l):
            if p < 0:
                distances[i] = -1
            else:
                pos = i  # prefix over positions 1..i == accesses 0..i-1
                count = 0
                while pos:
                    count += tree[pos]
                    pos -= pos & -pos
                pos = p + 1
                while pos:
                    count -= tree[pos]
                    pos -= pos & -pos
                distances[i] = count
                pos = p + 1  # the previous occurrence stops being latest
                while pos <= n:
                    tree[pos] -= 1
                    pos += pos & -pos
            pos = i + 1  # this access is now the latest occurrence
            while pos <= n:
                tree[pos] += 1
                pos += pos & -pos
        return cls(np.array(distances, dtype=np.int64))

    @classmethod
    def from_batch(cls, batch: AddressBatch,
                   block_size: int) -> "StackDistanceProfile":
        """Profile a batch at the given line size (shares the block memo)."""
        return cls.from_blocks(cached_block_numbers(batch, block_size))

    # -- readout ------------------------------------------------------- #

    @property
    def accesses(self) -> int:
        """Number of accesses profiled."""
        return int(self._distances.shape[0])

    @property
    def distances(self) -> np.ndarray:
        """Per-access reuse distances (``-1`` marks a first touch)."""
        return self._distances

    @property
    def histogram(self) -> np.ndarray:
        """``histogram[d]`` = accesses with reuse distance exactly ``d``."""
        return self._histogram

    @property
    def cold_accesses(self) -> int:
        """First-touch (compulsory) accesses."""
        return self._cold

    def hit_count(self, capacity_blocks: int) -> int:
        """Hits of a fully-associative LRU cache of ``capacity_blocks``."""
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be positive")
        index = min(capacity_blocks, self._cumulative.shape[0]) - 1
        return int(self._cumulative[index]) if index >= 0 else 0

    def miss_count(self, capacity_blocks: int) -> int:
        """Misses of a fully-associative LRU cache of ``capacity_blocks``."""
        return self.accesses - self.hit_count(capacity_blocks)

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Miss ratio at one capacity; 0.0 for an empty profile."""
        if not self.accesses:
            return 0.0
        return self.miss_count(capacity_blocks) / self.accesses

    def miss_ratio_curve(self, capacities: Sequence[int]) -> np.ndarray:
        """Miss ratio at each capacity (blocks) — a dense curve for free."""
        return np.array([self.miss_ratio(c) for c in capacities])


# --------------------------------------------------------------------- #
# part (b): per-level capped stack kernels (all-associativity readout)
# --------------------------------------------------------------------- #

def _level_pass_loads(blocks_l: list, mask: int, cap: int,
                      stacks: List[List[int]], hist: List[int]) -> None:
    """Capped per-set LRU stack distances of a load-only stream.

    Accumulates into ``hist`` (``hist[d]`` = accesses whose per-set stack
    distance is exactly ``d`` (< ``cap``)); deeper reuse and first touches
    are not recorded — they miss at every associativity up to ``cap``.
    The cap is sound because the top ``w`` entries of a per-set LRU stack
    are exactly the content of a ``w``-way set (inclusion), and a block
    below the cap can only resurface at the top through its own (re-)access.

    ``stacks``/``hist`` are caller-owned carried state, so the pass can be
    fed one chunk at a time (:class:`MultiConfigProfileBuilder`) with
    results identical to a single whole-trace call.
    """
    for b in blocks_l:
        st = stacks[b & mask]
        if b in st:
            i = st.index(b)
            hist[len(st) - 1 - i] += 1
            del st[i]
            st.append(b)
        else:
            st.append(b)
            if len(st) > cap:
                del st[0]


def _level_pass_uniform(blocks_l: list, writes_l: list, mask: int, cap: int,
                        stacks: List[List[int]], hist_load: List[int],
                        hist_store: List[int]) -> None:
    """Load/store-split capped distances under a uniform stack update.

    Exact for write-back/write-allocate caches, where stores allocate and
    refresh recency exactly like loads — the per-access update never
    depends on the (configuration-specific) hit outcome.  State is
    caller-owned and chunk-feedable, as in :func:`_level_pass_loads`.
    """
    for b, w in zip(blocks_l, writes_l):
        st = stacks[b & mask]
        if b in st:
            i = st.index(b)
            (hist_store if w else hist_load)[len(st) - 1 - i] += 1
            del st[i]
            st.append(b)
        else:
            st.append(b)
            if len(st) > cap:
                del st[0]


def _level_pass_wtna(blocks_l: list, writes_l: list, mask: int, cap: int,
                     stacks: List[List[int]], prios: List[List[int]],
                     hist_load: List[int], hist_store: List[int],
                     clock: int) -> int:
    """Capped *priority* stack distances under write-through/no-allocate.

    Stores never change any configuration's content (no allocate on miss,
    no movement on hit), but a store hit refreshes the block's last-touch
    time — which, being identical in every cache that holds the block, is a
    valid Mattson priority.  Loads therefore update the stack with the
    generalized priority walk: the new top is the loaded block, and walking
    down to its old position each level keeps the more-recently-touched of
    its old occupant and the carried running-minimum (each full cache of
    that depth evicts its least-recently-touched line).  Stacks hold the
    most recent ``cap`` *positions* (top at index 0), with per-entry
    last-touch priorities alongside.

    State (stacks, priorities, the returned clock) is caller-owned and
    chunk-feedable, as in :func:`_level_pass_loads`.
    """
    for b, w in zip(blocks_l, writes_l):
        clock += 1
        s = b & mask
        st = stacks[s]
        if w:
            # Store: touch-only.  A hit at position p refreshes the
            # priority for every cache deep enough to hold the block; a
            # miss (not in the capped stack => not in any tracked cache)
            # changes nothing.
            if b in st:
                i = st.index(b)
                hist_store[i] += 1
                prios[s][i] = clock
            continue
        pr = prios[s]
        if st and st[0] == b:
            hist_load[0] += 1
            pr[0] = clock
            continue
        try:
            idx = st.index(b)
        except ValueError:
            idx = -1
        if idx > 0:
            hist_load[idx] += 1
        if not st:
            st.append(b)
            pr.append(clock)
            continue
        # Priority walk: carry the running least-recently-touched entry
        # down; each level keeps the more recent of its occupant and the
        # carry.  On a hit the carry lands in the vacated slot; on a miss
        # it falls off the bottom (or extends a not-yet-full stack).
        vb, vp = st[0], pr[0]
        end = idx if idx > 0 else len(st)
        j = 1
        while j < end:
            if pr[j] < vp:
                st[j], vb = vb, st[j]
                pr[j], vp = vp, pr[j]
            j += 1
        if idx > 0:
            st[idx] = vb
            pr[idx] = vp
        elif len(st) < cap:
            st.append(vb)
            pr.append(vp)
        st[0] = b
        pr[0] = clock
    return clock


#: One profiled level: every associativity ``w <= cap`` at this set count
#: reads its hit counts out of the (load, store) distance histograms.
@dataclass(frozen=True)
class _LevelProfile:
    num_sets: int
    cap: int
    hist_load: Tuple[int, ...]
    hist_store: Tuple[int, ...]
    loads: int
    stores: int


#: Memoised level profiles per (trace identity, level, store mode).  Values
#: are tiny tuples of ints; the byte estimate is a flat guess that keeps the
#: table honest without weighing every boxed int.
_LEVEL_PROFILES = BoundedMemo(
    256, 4 * 1024 * 1024,
    nbytes_of=lambda value: 256 + 16 * (len(value[1].hist_load)
                                        + len(value[1].hist_store)))


def _checked_level_caps(level_caps: Mapping[int, int]) -> Dict[int, int]:
    """Validate a ``{num_sets: max_ways}`` request, returning it sorted."""
    if not level_caps:
        raise ValueError("level_caps must name at least one set count")
    checked: Dict[int, int] = {}
    for num_sets, max_ways in sorted(level_caps.items()):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError(
                f"num_sets must be a positive power of two, got {num_sets}")
        if max_ways < 1:
            raise ValueError("ways must be at least 1")
        checked[num_sets] = max_ways
    return checked


def _store_mode(has_stores: bool, write_policy: str) -> str:
    """The stack-update semantics a (batch, write policy) pair needs."""
    if not has_stores:
        return "loads"
    if write_policy == WritePolicy.WRITE_BACK_ALLOCATE:
        return "uniform"
    return "wtna"


def _round_cap(ways: int) -> int:
    """Depth cap actually profiled for a requested associativity.

    Rounding up to a power of two (>= 8) makes unrelated readers of the
    same trace land on the same memo entry: a cap-8 histogram serves every
    associativity up to eight.
    """
    cap = 8
    while cap < ways:
        cap <<= 1
    return cap


class _LevelState:
    """Carried state of one level's capped stack pass.

    Feeding the whole trace in one :meth:`feed` call reproduces the original
    one-shot kernels exactly; feeding it in chunks carries the per-set
    stacks (and, for ``wtna``, priorities and the touch clock) across calls,
    so chunked and one-shot profiles are bit-identical by construction.
    """

    __slots__ = ("num_sets", "cap", "mode", "stacks", "prios",
                 "hist_load", "hist_store", "clock", "loads", "stores")

    def __init__(self, num_sets: int, cap: int, mode: str) -> None:
        self.num_sets = num_sets
        self.cap = cap
        self.mode = mode
        self.stacks: List[List[int]] = [[] for _ in range(num_sets)]
        self.prios: Optional[List[List[int]]] = (
            [[] for _ in range(num_sets)] if mode == "wtna" else None)
        self.hist_load = [0] * cap
        self.hist_store = [0] * cap
        self.clock = 0
        self.loads = 0
        self.stores = 0

    def feed(self, blocks_l: list, writes_l: Optional[list]) -> None:
        """Consume one chunk of block numbers (and store flags)."""
        mask = self.num_sets - 1
        if self.mode == "loads":
            _level_pass_loads(blocks_l, mask, self.cap,
                              self.stacks, self.hist_load)
            self.loads += len(blocks_l)
            return
        if self.mode == "uniform":
            _level_pass_uniform(blocks_l, writes_l, mask, self.cap,
                                self.stacks, self.hist_load, self.hist_store)
        else:
            self.clock = _level_pass_wtna(
                blocks_l, writes_l, mask, self.cap, self.stacks, self.prios,
                self.hist_load, self.hist_store, self.clock)
        stores = sum(writes_l)
        self.stores += stores
        self.loads += len(blocks_l) - stores

    def profile(self) -> _LevelProfile:
        """Freeze the accumulated histograms into a readout profile."""
        return _LevelProfile(num_sets=self.num_sets, cap=self.cap,
                             hist_load=tuple(self.hist_load),
                             hist_store=tuple(self.hist_store),
                             loads=self.loads, stores=self.stores)


def _build_level(batch: AddressBatch, blocks: np.ndarray, num_sets: int,
                 cap: int, mode: str) -> _LevelProfile:
    state = _LevelState(num_sets, cap, mode)
    writes_l = None if mode == "loads" else batch.is_write.tolist()
    state.feed(blocks.tolist(), writes_l)
    return state.profile()


def _cached_level(batch: AddressBatch, blocks: np.ndarray, num_sets: int,
                  cap: int, mode: str) -> _LevelProfile:
    """One level's profile, memoised when the input arrays are immutable.

    Keys combine the level parameters with the *identity* of the block and
    store-mask arrays; the entry stores strong references to both, so a
    served id can never belong to a different (recycled) array — the same
    soundness rule as :mod:`repro.engine.memo`.  Writable inputs are
    profiled fresh on every call.
    """
    writes = batch.is_write
    if blocks.flags.writeable or (mode != "loads" and writes.flags.writeable):
        return _build_level(batch, blocks, num_sets, cap, mode)
    key = (id(blocks), id(writes) if mode != "loads" else None,
           num_sets, cap, mode)
    entry = _LEVEL_PROFILES.get(
        key,
        lambda: (writes, _build_level(batch, blocks, num_sets, cap, mode)),
        anchor=blocks)
    if mode != "loads" and entry[0] is not writes:  # pragma: no cover
        # Paranoia: the stored mask is kept alive by the entry, so its id
        # cannot be recycled while the entry exists — but recompute rather
        # than trust that invariant if it ever breaks.
        return _build_level(batch, blocks, num_sets, cap, mode)
    return entry[1]


class MultiConfigLRUProfile:
    """All-associativity profile of one (trace, block size) pair.

    ``level_caps`` maps each required set count (power of two; ``1`` is the
    fully-associative organisation) to the deepest associativity that will
    be read out of it.  Construction runs one capped stack pass per level
    (memoised process-globally); :meth:`miss_counts` then prices any
    ``(num_sets, ways)`` configuration of the grid in O(ways).
    """

    def __init__(self, batch: AddressBatch, block_size: int,
                 level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 ) -> None:
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")
        self._block_size = block_size
        self._mode = _store_mode(batch.has_stores, write_policy)
        blocks = cached_block_numbers(batch, block_size)
        self._levels: Dict[int, _LevelProfile] = {}
        for num_sets, max_ways in _checked_level_caps(level_caps).items():
            self._levels[num_sets] = _cached_level(
                batch, blocks, num_sets, _round_cap(max_ways), self._mode)

    @classmethod
    def _from_levels(cls, block_size: int, mode: str,
                     levels: Mapping[int, _LevelProfile],
                     ) -> "MultiConfigLRUProfile":
        """Wrap prebuilt level profiles (the builder's finish path)."""
        self = cls.__new__(cls)
        self._block_size = block_size
        self._mode = mode
        self._levels = dict(levels)
        return self

    @property
    def block_size(self) -> int:
        """Line size (bytes) the profile was taken at."""
        return self._block_size

    @property
    def store_mode(self) -> str:
        """Stack-update semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def levels(self) -> List[int]:
        """Profiled set counts."""
        return sorted(self._levels)

    def miss_counts(self, num_sets: int, ways: int) -> ProfileCounts:
        """Exact counters of the ``(num_sets, ways)`` LRU configuration."""
        level = self._levels.get(num_sets)
        if level is None:
            raise KeyError(f"set count {num_sets} was not profiled "
                           f"(levels: {self.levels})")
        if ways > level.cap:
            raise ValueError(
                f"ways {ways} exceeds the profiled depth cap {level.cap} "
                f"at {num_sets} sets")
        # distance d hits every cache with ways > d: hit iff d < ways, and
        # distance == ways is exactly the first miss — no tolerance band.
        load_hits = sum(level.hist_load[:ways])
        store_hits = sum(level.hist_store[:ways])
        return ProfileCounts(loads=level.loads, stores=level.stores,
                             load_misses=level.loads - load_hits,
                             store_misses=level.stores - store_hits)


# --------------------------------------------------------------------- #
# part (b'): incremental (chunk-fed) construction for streamed traces
# --------------------------------------------------------------------- #

class StackDistanceBuilder:
    """Incremental :class:`StackDistanceProfile` over a chunked block stream.

    ``from_blocks`` needs the whole block array up front (its
    previous-occurrence pass is one global argsort); a streamed trace never
    materialises that array.  The builder instead carries the per-block
    last-occurrence table and a growable Fenwick tree across :meth:`feed`
    calls, producing per-access distances identical to the one-shot pass —
    both count live markers (latest occurrences) strictly between an
    access and its block's previous occurrence.

    Memory is O(footprint + accesses-so-far distances); each feed is
    O(len(chunk) log N).  The tree doubles its capacity as positions grow,
    rebuilding from the live-marker set (one entry per distinct block).
    """

    def __init__(self) -> None:
        self._distances: List[int] = []
        self._last_pos: Dict[int, int] = {}
        self._count = 0
        self._cap = 1024
        self._tree = [0] * (self._cap + 1)

    def _grow(self, need: int) -> None:
        cap = self._cap
        while cap < need:
            cap <<= 1
        self._cap = cap
        tree = [0] * (cap + 1)
        # Live markers are exactly the latest occurrence of each distinct
        # block, so the rebuild is O(footprint log N), not O(N log N).
        for position in self._last_pos.values():
            pos = position + 1
            while pos <= cap:
                tree[pos] += 1
                pos += pos & -pos
        self._tree = tree

    def _prefix(self, pos: int) -> int:
        tree = self._tree
        total = 0
        while pos:
            total += tree[pos]
            pos -= pos & -pos
        return total

    def _update(self, pos: int, delta: int) -> None:
        tree = self._tree
        cap = self._cap
        while pos <= cap:
            tree[pos] += delta
            pos += pos & -pos

    def feed(self, blocks: np.ndarray) -> None:
        """Consume one chunk of block numbers (trace order)."""
        blocks_l = np.asarray(blocks, dtype=np.int64).tolist()
        if not blocks_l:
            return
        i = self._count
        if i + len(blocks_l) > self._cap:
            self._grow(i + len(blocks_l))
        last_pos = self._last_pos
        distances = self._distances
        for b in blocks_l:
            p = last_pos.get(b, -1)
            if p < 0:
                distances.append(-1)
            else:
                distances.append(self._prefix(i) - self._prefix(p + 1))
                self._update(p + 1, -1)
            self._update(i + 1, 1)
            last_pos[b] = i
            i += 1
        self._count = i

    def feed_batch(self, batch: AddressBatch, block_size: int) -> None:
        """Consume one :class:`AddressBatch` at the given line size."""
        self.feed(cached_block_numbers(batch, block_size))

    @property
    def accesses(self) -> int:
        """Accesses consumed so far."""
        return self._count

    def finish(self) -> StackDistanceProfile:
        """The profile of everything fed so far (builder stays usable)."""
        return StackDistanceProfile(np.array(self._distances, dtype=np.int64))


class MultiConfigProfileBuilder:
    """Incremental :class:`MultiConfigLRUProfile` over a chunked trace.

    The capped per-set stack kernels are already sequential with carried
    state, so the builder simply owns one :class:`_LevelState` per requested
    set count and feeds each chunk through all of them; :meth:`finish`
    freezes the states into a profile whose readout is bit-identical to a
    one-shot :class:`MultiConfigLRUProfile` of the concatenated trace.

    The store mode must be fixed before the first chunk (the one-shot path
    derives it from ``batch.has_stores``, which a stream cannot know up
    front): pass ``has_stores=False`` only when the whole trace is loads.
    Feeding a chunk with stores in load-only mode raises rather than
    silently diverging.
    """

    def __init__(self, block_size: int, level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 has_stores: bool = True) -> None:
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")
        self._block_size = block_size
        self._mode = _store_mode(has_stores, write_policy)
        self._states: Dict[int, _LevelState] = {
            num_sets: _LevelState(num_sets, _round_cap(max_ways), self._mode)
            for num_sets, max_ways in _checked_level_caps(level_caps).items()}
        self._accesses = 0

    @property
    def store_mode(self) -> str:
        """Stack-update semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def accesses(self) -> int:
        """Accesses consumed so far."""
        return self._accesses

    def feed(self, batch: AddressBatch) -> int:
        """Consume one chunk; returns its length."""
        if self._mode == "loads" and batch.has_stores:
            raise ValueError(
                "store mode changed mid-stream: this builder was created "
                "with has_stores=False but the chunk fed after "
                f"{self._accesses} accesses contains stores; create the "
                "builder with has_stores=True (the write policy's store "
                "semantics then apply to every chunk)")
        blocks_l = cached_block_numbers(batch, self._block_size).tolist()
        writes_l = (None if self._mode == "loads"
                    else batch.is_write.tolist())
        for state in self._states.values():
            state.feed(blocks_l, writes_l)
        self._accesses += len(blocks_l)
        return len(blocks_l)

    def finish(self) -> MultiConfigLRUProfile:
        """Freeze into a profile (builder stays usable for more chunks)."""
        return MultiConfigLRUProfile._from_levels(
            self._block_size, self._mode,
            {num_sets: state.profile()
             for num_sets, state in self._states.items()})


def profile_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the level-profile memo."""
    return _LEVEL_PROFILES.info()


def profile_cache_clear() -> None:
    """Drop every memoised level profile and zero the counters."""
    _LEVEL_PROFILES.clear()


# --------------------------------------------------------------------- #
# part (b2): single-pass multi-capacity FIFO profiling
# --------------------------------------------------------------------- #

def _occurrence_lists(blocks: np.ndarray) -> Tuple[np.ndarray, List[List[int]]]:
    """Distinct block numbers and each one's ascending access positions.

    One stable vectorized sort of the block stream; the per-block position
    lists then serve *every* FIFO configuration priced from the stream
    (the single trace-order pass all the event simulations share).
    """
    blocks = np.asarray(blocks)
    if blocks.shape[0] == 0:
        return np.empty(0, dtype=np.int64), []
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    boundary = np.empty(sorted_blocks.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_blocks[1:], sorted_blocks[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    values = sorted_blocks[starts].astype(np.int64, copy=False)
    occurrences = [part.tolist() for part in np.split(order, starts[1:])]
    return values, occurrences


def _fifo_level_counts(num_sets: int, ways: int, mode: str,
                       occurrences: List[List[int]],
                       block_sets: List[int],
                       first_events: List[int],
                       is_write: Optional[List[bool]],
                       ) -> Tuple[int, int]:
    """Load/store misses of one ``(num_sets, ways)`` FIFO configuration.

    Event-driven over misses only — FIFO's **hit transparency**: a hit
    never mutates FIFO state (the queue reorders only on allocation), so
    every access between a block's allocation and its eviction can be
    skipped wholesale.  The pending-miss heap holds, per non-resident block
    with a future access, that access's position; popping in position order
    replays exactly the misses the per-access kernel would count.  Each
    allocation appends to its set's insertion log, and the victim of
    allocation ``a`` is the block logged at ``a - ways`` (a block is never
    re-allocated while resident, so log entries are live exactly once) —
    whose next access after the eviction point re-enters the heap as a
    pending miss.  Cost is O((footprint + misses) log footprint),
    independent of the hit count.

    Events are single ints, ``position << shift | block_index`` (a pending
    block's event sits at a position accessing that very block, so events
    occupy distinct positions and the packed ordering is the position
    ordering) — plain-int heap compares are markedly cheaper than tuple
    compares, and ``next_occ`` carries each block's pending occurrence
    index on the side.
    """
    shift = max(1, len(occurrences)).bit_length()
    mask = (1 << shift) - 1
    heap = list(first_events)  # ascending unique positions: already a heap
    next_occ = [0] * len(occurrences)
    lmiss = 0
    smiss = 0
    rings: List[List[int]] = [[] for _ in range(num_sets)]
    wtna = mode == "wtna"
    classify = mode != "loads" and is_write is not None
    pop, push = heappop, heappush
    while heap:
        event = pop(heap)
        block = event & mask
        pos = event >> shift
        if classify and is_write[pos]:
            smiss += 1
            if wtna:
                # Write-through/no-allocate store miss: no state change;
                # the block's very next access is still a pending miss.
                occ = occurrences[block]
                index = next_occ[block] + 1
                if index < len(occ):
                    next_occ[block] = index
                    push(heap, (occ[index] << shift) | block)
                continue
        else:
            lmiss += 1
        ring = rings[block_sets[block]]
        ring.append(block)
        alloc = len(ring)
        if alloc > ways:
            victim = ring[alloc - ways - 1]
            occ = occurrences[victim]
            index = bisect_right(occ, pos)
            if index < len(occ):
                next_occ[victim] = index
                push(heap, (occ[index] << shift) | victim)
    return lmiss, smiss


class MultiConfigFIFOProfile:
    """Single-pass pricing of a bit-selection ``(num_sets, ways)`` FIFO grid.

    FIFO is **not** a stack algorithm (Belady's anomaly: a larger cache can
    miss more), so no reuse-distance histogram can serve every capacity the
    way :class:`MultiConfigLRUProfile` does.  What FIFO does have is *hit
    transparency*: hits never touch FIFO state.  This profile therefore
    makes one vectorized pass over the trace (per-block occurrence lists),
    after which each requested configuration is priced by an event-driven
    replay that touches only its misses — exact to the per-configuration
    kernels, at a cost proportional to the miss count rather than the
    access count.  Configurations are priced lazily on first query and
    memoised for the profile's lifetime.

    Store semantics match the batch kernels: a write-back/write-allocate
    store misses like a load (dirtiness never changes the queue), a
    write-through/no-allocate store miss leaves the set untouched.
    """

    def __init__(self, batch: AddressBatch, block_size: int,
                 level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 ) -> None:
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")
        mode = _store_mode(batch.has_stores, write_policy)
        blocks = cached_block_numbers(batch, block_size)
        stores = int(batch.store_count)
        writes = batch.is_write if mode != "loads" else None
        self._init_from_arrays(block_size, mode, blocks, writes,
                               int(blocks.shape[0]) - stores, stores,
                               level_caps)

    def _init_from_arrays(self, block_size: int, mode: str,
                          blocks: np.ndarray, writes: Optional[np.ndarray],
                          loads: int, stores: int,
                          level_caps: Mapping[int, int]) -> None:
        self._block_size = block_size
        self._mode = mode
        self._loads = loads
        self._stores = stores
        self._level_caps = _checked_level_caps(level_caps)
        self._values, self._occurrences = _occurrence_lists(blocks)
        shift = max(1, len(self._occurrences)).bit_length()
        self._first_events = sorted(
            (occ[0] << shift) | index
            for index, occ in enumerate(self._occurrences))
        self._is_write = writes.tolist() if writes is not None else None
        self._block_sets: Dict[int, List[int]] = {}
        self._counts: Dict[Tuple[int, int], Tuple[int, int]] = {}

    @classmethod
    def _from_arrays(cls, block_size: int, mode: str, blocks: np.ndarray,
                     writes: Optional[np.ndarray], loads: int, stores: int,
                     level_caps: Mapping[int, int],
                     ) -> "MultiConfigFIFOProfile":
        self = cls.__new__(cls)
        self._init_from_arrays(block_size, mode, blocks, writes, loads,
                               stores, level_caps)
        return self

    # -- readout ------------------------------------------------------- #

    @property
    def block_size(self) -> int:
        """Line size the profile was taken at."""
        return self._block_size

    @property
    def store_mode(self) -> str:
        """Store semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def accesses(self) -> int:
        """Total accesses in the profiled stream."""
        return self._loads + self._stores

    @property
    def levels(self) -> List[int]:
        """Set counts the profile can price, ascending."""
        return sorted(self._level_caps)

    def miss_counts(self, num_sets: int, ways: int) -> ProfileCounts:
        """Exact counters of the ``(num_sets, ways)`` FIFO configuration."""
        cap = self._level_caps.get(num_sets)
        if cap is None:
            raise KeyError(f"set count {num_sets} was not profiled "
                           f"(levels: {self.levels})")
        if ways > cap:
            raise ValueError(
                f"ways {ways} exceeds the profiled depth cap {cap} "
                f"at {num_sets} sets")
        if ways < 1:
            raise ValueError("ways must be at least 1")
        counts = self._counts.get((num_sets, ways))
        if counts is None:
            block_sets = self._block_sets.get(num_sets)
            if block_sets is None:
                mask = np.int64(num_sets - 1)
                block_sets = (self._values & mask).tolist()
                self._block_sets[num_sets] = block_sets
            counts = _fifo_level_counts(
                num_sets, ways, self._mode, self._occurrences, block_sets,
                self._first_events, self._is_write)
            self._counts[(num_sets, ways)] = counts
        lmiss, smiss = counts
        return ProfileCounts(loads=self._loads, stores=self._stores,
                             load_misses=lmiss, store_misses=smiss)


class MultiCapacityFIFOProfile:
    """Fully-associative FIFO miss-ratio readout at every listed capacity.

    The fully-associative face of :class:`MultiConfigFIFOProfile` (one set,
    ways = capacity in blocks), mirroring
    :class:`StackDistanceProfile`'s readout API over a block-number
    stream.  Because FIFO lacks the stack property the capacities must be
    declared up front — each is priced by its own miss-driven event replay
    off the shared single pass.
    """

    def __init__(self, blocks: np.ndarray,
                 capacities: Sequence[int]) -> None:
        capacities = sorted({int(c) for c in capacities})
        if not capacities:
            raise ValueError("capacities must name at least one size")
        if capacities[0] < 1:
            raise ValueError("capacities must be positive")
        blocks = np.asarray(blocks, dtype=np.int64)
        self._accesses = int(blocks.shape[0])
        self._grid = MultiConfigFIFOProfile._from_arrays(
            1, "loads", blocks, None, self._accesses, 0,
            {1: capacities[-1]})
        self._capacities = capacities

    @classmethod
    def from_batch(cls, batch: AddressBatch, block_size: int,
                   capacities: Sequence[int]) -> "MultiCapacityFIFOProfile":
        """Profile a batch's block stream at the given line size."""
        return cls(cached_block_numbers(batch, block_size), capacities)

    @property
    def accesses(self) -> int:
        """Accesses in the profiled stream."""
        return self._accesses

    @property
    def capacities(self) -> List[int]:
        """Capacities (in blocks) the profile prices, ascending."""
        return list(self._capacities)

    def miss_count(self, capacity_blocks: int) -> int:
        """Exact misses of a FIFO cache of that capacity."""
        if capacity_blocks not in self._capacities:
            raise KeyError(
                f"capacity {capacity_blocks} was not profiled "
                f"(capacities: {self._capacities})")
        return self._grid.miss_counts(1, capacity_blocks).misses

    def hit_count(self, capacity_blocks: int) -> int:
        """Exact hits at one capacity."""
        return self._accesses - self.miss_count(capacity_blocks)

    def miss_ratio(self, capacity_blocks: int) -> float:
        """Exact miss ratio at one capacity; 0.0 for an empty stream."""
        if not self._accesses:
            return 0.0
        return self.miss_count(capacity_blocks) / self._accesses

    def miss_ratio_curve(self, capacities: Optional[Sequence[int]] = None,
                         ) -> np.ndarray:
        """Miss ratio at each capacity (defaults to every profiled one)."""
        if capacities is None:
            capacities = self._capacities
        return np.array([self.miss_ratio(c) for c in capacities])


class MultiConfigFIFOBuilder:
    """Incremental :class:`MultiConfigFIFOProfile` over a chunked stream.

    The FIFO profile needs whole-trace occurrence lists, so the builder
    simply accumulates each chunk's block numbers (and store mask) and
    defers the single vectorized pass to :meth:`finish` — bit-identical to
    the one-shot profile of the concatenated trace by construction, with
    peak extra memory of one int64 per access.

    As with the exact LRU builder the store mode is fixed up front;
    feeding a chunk that contradicts it raises immediately.
    """

    def __init__(self, block_size: int, level_caps: Mapping[int, int],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 has_stores: bool = True) -> None:
        if write_policy not in WritePolicy.ALL:
            raise ValueError(f"unknown write policy {write_policy!r}")
        self._block_size = block_size
        self._mode = _store_mode(has_stores, write_policy)
        self._level_caps = _checked_level_caps(level_caps)
        self._chunks: List[np.ndarray] = []
        self._write_chunks: List[np.ndarray] = []
        self._loads = 0
        self._stores = 0

    @property
    def store_mode(self) -> str:
        """Store semantics used (``loads``, ``uniform`` or ``wtna``)."""
        return self._mode

    @property
    def accesses(self) -> int:
        """Accesses consumed so far."""
        return self._loads + self._stores

    def feed(self, batch: AddressBatch) -> int:
        """Consume one chunk; returns its length."""
        if self._mode == "loads" and batch.has_stores:
            raise ValueError(
                "store mode changed mid-stream: this builder was created "
                "with has_stores=False but the chunk fed after "
                f"{self.accesses} accesses contains stores; create the "
                "builder with has_stores=True (the write policy's store "
                "semantics then apply to every chunk)")
        blocks = cached_block_numbers(batch, self._block_size)
        stores = int(batch.store_count)
        self._chunks.append(blocks)
        if self._mode != "loads":
            self._write_chunks.append(batch.is_write)
        self._loads += int(blocks.shape[0]) - stores
        self._stores += stores
        return int(blocks.shape[0])

    def finish(self) -> MultiConfigFIFOProfile:
        """Freeze into a profile (builder stays usable for more chunks)."""
        if self._chunks:
            blocks = np.concatenate(self._chunks)
            writes = (np.concatenate(self._write_chunks)
                      if self._mode != "loads" else None)
        else:
            blocks = np.empty(0, dtype=np.int64)
            writes = None
        return MultiConfigFIFOProfile._from_arrays(
            self._block_size, self._mode, blocks, writes,
            self._loads, self._stores, self._level_caps)


# --------------------------------------------------------------------- #
# part (c): sweep partitioning
# --------------------------------------------------------------------- #

#: Index-function ``cache_key`` heads whose set mapping is plain bit
#: selection over the low block-number bits (``single-set`` is the
#: degenerate one-set case used by fully-associative organisations).
_BIT_SELECT_KEYS = ("bit-select", "single-set")


@dataclass
class _PlanTask:
    key: Hashable
    batch: AddressBatch
    cache: object
    runner: Optional[Callable]
    level: Optional[Tuple[int, int]]  # (num_sets, ways) when profilable
    kind: Optional[str] = None        # "lru" or "fifo" when profilable


class MultiConfigPlan:
    """Partition a sweep's tasks into profiled and kernel-run configurations.

    Drivers :meth:`add` one entry per task — a result key, the
    :class:`AddressBatch` the task replays, and a zero-argument cache
    factory — then call :meth:`run` once.  Profilable tasks (see the module
    docstring) are grouped per (trace identity, block size, store mode);
    each group is priced out of a single :class:`MultiConfigLRUProfile`
    pass.  Every other task simply runs its cache's own kernel, so the plan
    never changes *which* numbers a sweep produces — only how many trace
    passes it takes to produce them.

    ``profile="auto"`` (the default) profiles a group only when it is
    expected to win: at least two configurations no deeper than
    :data:`PROFILE_AUTO_CAP_LIMIT` ways (a deeper member — e.g. a 256-way
    fully-associative organisation — stays on its own kernel without
    vetoing the shallow rest of its group).  ``"always"`` and ``"never"``
    force the choice either way (both still bit-exact).
    """

    def __init__(self, profile: str = "auto", sample_rate: float = 0.01,
                 sample_size: Optional[int] = None,
                 profile_seed: int = 0) -> None:
        self._profile = check_profile_mode(profile)
        if not 0.0 < float(sample_rate) <= 1.0:
            raise ValueError(
                f"sample rate must be in (0, 1], got {sample_rate}")
        if sample_size is not None and int(sample_size) < 1:
            raise ValueError(
                f"sample size must be at least 1, got {sample_size}")
        if int(profile_seed) < 0:
            raise ValueError(
                f"profile seed must be non-negative, got {profile_seed}")
        self._sample_rate = float(sample_rate)
        self._sample_size = None if sample_size is None else int(sample_size)
        self._profile_seed = int(profile_seed)
        self._tasks: List[_PlanTask] = []

    @staticmethod
    def _profilable_shape(cache) -> Optional[Tuple[int, int]]:
        """Common profilability gate: cold bit-selection batch cache."""
        if not isinstance(cache, BatchSetAssociativeCache):
            return None
        if cache._classifier is not None or cache._clock != 0:
            return None
        key = cache.index_function.cache_key
        if key is None or key[0] not in _BIT_SELECT_KEYS:
            return None
        return cache.num_sets, cache.ways

    @staticmethod
    def profilable(cache, batch: AddressBatch) -> Optional[Tuple[int, int]]:
        """The ``(num_sets, ways)`` level a cache can be profiled at, or None.

        Requires a cold :class:`BatchSetAssociativeCache` with bit-selection
        (or single-set) placement, LRU replacement and no 3C classifier.
        Both write policies qualify — the store-mode kernels absorb the
        difference — but a warmed cache never does (profiles assume a cold
        start).
        """
        if getattr(cache, "replacement_name", None) != "lru":
            return None
        return MultiConfigPlan._profilable_shape(cache)

    @staticmethod
    def profilable_fifo(cache, batch: AddressBatch,
                        ) -> Optional[Tuple[int, int]]:
        """The ``(num_sets, ways)`` level of a FIFO-profilable cache, or None.

        Same shape gate as :meth:`profilable` with FIFO replacement: such
        tasks are priced by :class:`MultiConfigFIFOProfile`'s miss-driven
        event replays instead of per-configuration kernel passes.
        """
        if getattr(cache, "replacement_name", None) != "fifo":
            return None
        return MultiConfigPlan._profilable_shape(cache)

    def add(self, key: Hashable, batch: AddressBatch,
            factory: Callable[[], object],
            runner: Optional[Callable] = None) -> None:
        """Register one task: result ``key``, its batch, a cache factory.

        ``runner(cache, batch)`` overrides how a fallback task is driven
        (defaults to ``cache.run(batch)``) — the studies pass their scalar
        replay shim so caller-supplied organisations keep working.
        """
        cache = factory()
        level = None
        kind = None
        if self._profile != "never":
            level = self.profilable(cache, batch)
            if level is not None:
                kind = "lru"
            else:
                level = self.profilable_fifo(cache, batch)
                if level is not None:
                    kind = "fifo"
        self._tasks.append(_PlanTask(key=key, batch=batch, cache=cache,
                                     runner=runner, level=level, kind=kind))

    def _group_key(self, task: _PlanTask) -> tuple:
        cache = task.cache
        mode = _store_mode(task.batch.has_stores, cache.write_policy)
        # Two batches may share one address array under different store
        # masks; store-sensitive modes therefore key on the mask identity
        # too (an all-loads mask is behaviourally unique, so "loads" mode
        # only needs the addresses).
        mask_id = id(task.batch.is_write) if mode != "loads" else None
        return (task.kind, id(task.batch.addresses), mask_id,
                cache.block_size, mode)

    def _build_profile(self, kind: str, exemplar: _PlanTask,
                       level_caps: Dict[int, int]):
        """The shared profile one task group is priced out of."""
        if kind == "fifo":
            return MultiConfigFIFOProfile(
                exemplar.batch, exemplar.cache.block_size, level_caps,
                write_policy=exemplar.cache.write_policy)
        if self._profile == "sampled":
            from .shards import SampledMultiConfigLRUProfile

            return SampledMultiConfigLRUProfile(
                exemplar.batch, exemplar.cache.block_size, level_caps,
                write_policy=exemplar.cache.write_policy,
                rate=self._sample_rate, seed=self._profile_seed,
                sample_size=self._sample_size)
        return MultiConfigLRUProfile(
            exemplar.batch, exemplar.cache.block_size, level_caps,
            write_policy=exemplar.cache.write_policy)

    def run(self) -> Dict[Hashable, ProfileCounts]:
        """Execute the plan; returns ``{key: ProfileCounts}`` for every task."""
        groups: Dict[tuple, List[_PlanTask]] = {}
        for task in self._tasks:
            if task.level is not None:
                groups.setdefault(self._group_key(task), []).append(task)

        results: Dict[Hashable, ProfileCounts] = {}
        profiled: set = set()
        for group_key, group in groups.items():
            kind = group_key[0]
            if self._profile == "auto":
                # A too-deep configuration (e.g. the 256-way fully
                # associative organisation) pays a per-access walk linear
                # in its depth, so it alone stays on its kernel — without
                # vetoing the shallow members of its group.  (The FIFO
                # profile's event replays are miss-bounded rather than
                # depth-bounded, but the same conservative gate keeps
                # "auto" predictable for both kinds.)
                group = [t for t in group
                         if t.level[1] <= PROFILE_AUTO_CAP_LIMIT]
                if len(group) < _AUTO_MIN_GROUP:
                    continue
            level_caps: Dict[int, int] = {}
            for task in group:
                num_sets, ways = task.level
                level_caps[num_sets] = max(level_caps.get(num_sets, 0), ways)
            profile = self._build_profile(kind, group[0], level_caps)
            for task in group:
                results[task.key] = profile.miss_counts(*task.level)
                profiled.add(id(task))

        for task in self._tasks:
            if id(task) in profiled:
                continue
            if task.runner is not None:
                task.runner(task.cache, task.batch)
            else:
                task.cache.run(task.batch)
            results[task.key] = ProfileCounts.from_stats(task.cache.stats)
        return results


def run_lru_grid(batch: AddressBatch, block_size: int,
                 grid: Sequence[Tuple[int, int]],
                 write_policy: str = WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                 profile: str = "always",
                 replacement: str = "lru",
                 sample_rate: float = 0.01,
                 sample_size: Optional[int] = None,
                 profile_seed: int = 0,
                 ) -> Dict[Tuple[int, int], ProfileCounts]:
    """Price a whole conventional ``(num_sets, ways)`` grid at once.

    The new scenario the profiler opens: dense capacity/associativity
    curves over one trace.  ``grid`` lists ``(num_sets, ways)`` pairs (the
    capacity is ``num_sets * ways * block_size``); the result maps each
    pair to its exact :class:`ProfileCounts`.  ``profile="always"`` (the
    default) runs one profile pass per distinct set count;
    ``profile="never"`` runs every configuration through its own batch
    kernel — the comparison ``benchmarks/bench_engine.py`` times and the
    differential suite holds bit-exact; ``profile="sampled"`` prices LRU
    grids approximately at ``sample_rate`` (see
    :mod:`repro.engine.shards` — ``sample_size`` caps the expected number
    of sampled blocks, ``profile_seed`` picks the hash universe).
    ``replacement`` widens the grid beyond LRU: ``"fifo"`` grids are
    priced exactly by the single-pass :class:`MultiConfigFIFOProfile`
    under every profiled mode; any other policy the batch engine knows
    simply runs per-configuration kernels.
    """
    plan = MultiConfigPlan(profile=profile, sample_rate=sample_rate,
                           sample_size=sample_size, profile_seed=profile_seed)
    for num_sets, ways in grid:
        def factory(num_sets=num_sets, ways=ways):
            return BatchSetAssociativeCache(
                size_bytes=num_sets * ways * block_size,
                block_size=block_size, ways=ways,
                replacement=replacement,
                write_policy=write_policy)
        plan.add((num_sets, ways), batch, factory)
    return plan.run()
