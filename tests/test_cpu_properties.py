"""Hypothesis properties for the CPU predictors.

Both predictors are tiny state machines (2-bit saturating counters with
specific update rules from the paper), so each is checked against an
independent pure-Python mirror model over random outcome sequences — with
table sizes small enough that different pcs alias the same entry, exactly
the tagless behaviour the paper describes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.address_predictor import StrideAddressPredictor
from repro.cpu.branch_predictor import BimodalBranchPredictor

# --------------------------------------------------------------------------- #
# bimodal branch predictor
# --------------------------------------------------------------------------- #

branch_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255).map(lambda n: n * 4),
              st.booleans()),
    max_size=120)


@settings(max_examples=60, deadline=None)
@given(entries_log2=st.integers(min_value=0, max_value=4),
       initial=st.integers(min_value=0, max_value=3),
       sequence=branch_sequences)
def test_bimodal_matches_mirror_model(entries_log2, initial, sequence):
    entries = 1 << entries_log2
    predictor = BimodalBranchPredictor(entries=entries, initial_counter=initial)
    counters = [initial] * entries
    mispredictions = 0
    for pc, taken in sequence:
        index = (pc >> 2) % entries
        expected_prediction = counters[index] >= 2
        assert predictor.predict(pc) == expected_prediction
        correct = predictor.update(pc, taken)
        assert correct == (expected_prediction == taken)
        if not correct:
            mispredictions += 1
        if taken:
            counters[index] = min(3, counters[index] + 1)
        else:
            counters[index] = max(0, counters[index] - 1)
    assert predictor.predictions == len(sequence)
    assert predictor.mispredictions == mispredictions


@settings(max_examples=40, deadline=None)
@given(pc=st.integers(min_value=0, max_value=10_000).map(lambda n: n * 4),
       run=st.integers(min_value=2, max_value=10))
def test_bimodal_saturates_and_hysteresis(pc, run):
    """After >=2 taken outcomes the counter saturates towards taken, and a
    single not-taken outcome must not flip the prediction (hysteresis)."""
    predictor = BimodalBranchPredictor(entries=64)
    for _ in range(run):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True
    predictor.update(pc, False)
    assert predictor.predict(pc) is True      # one deviation: still taken
    predictor.update(pc, False)
    assert predictor.predict(pc) is False     # two deviations: flipped


# --------------------------------------------------------------------------- #
# stride address predictor
# --------------------------------------------------------------------------- #

address_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63).map(lambda n: n * 4),
              st.integers(min_value=0, max_value=1 << 20)),
    max_size=120)


@settings(max_examples=60, deadline=None)
@given(entries_log2=st.integers(min_value=0, max_value=3),
       threshold=st.integers(min_value=1, max_value=3),
       sequence=address_sequences)
def test_stride_predictor_matches_mirror_model(entries_log2, threshold, sequence):
    entries = 1 << entries_log2
    predictor = StrideAddressPredictor(entries=entries,
                                       confidence_threshold=threshold)
    table = [{"last": 0, "stride": 0, "counter": 0} for _ in range(entries)]
    confident = correct_confident = 0
    for pc, address in sequence:
        entry = table[(pc >> 2) % entries]

        prediction = predictor.predict(pc)
        expect_confident = entry["counter"] >= threshold
        assert prediction.confident == expect_confident
        assert prediction.usable == expect_confident
        if expect_confident:
            confident += 1
            assert prediction.predicted_address == entry["last"] + entry["stride"]
        else:
            assert prediction.predicted_address is None

        hit = predictor.update(pc, address)
        was_correct = entry["last"] + entry["stride"] == address
        assert hit == (expect_confident and was_correct)
        if hit:
            correct_confident += 1
        if was_correct:
            entry["counter"] = min(3, entry["counter"] + 1)
        else:
            entry["counter"] = max(0, entry["counter"] - 1)
        if entry["counter"] < 2:              # paper: stride frozen at >= "10"
            entry["stride"] = address - entry["last"]
        entry["last"] = address

    assert predictor.lookups == len(sequence)
    assert predictor.confident_predictions == confident
    assert predictor.correct_predictions == correct_confident


@settings(max_examples=40, deadline=None)
@given(base=st.integers(min_value=0, max_value=1 << 16),
       stride=st.integers(min_value=1, max_value=512),
       warmup=st.integers(min_value=5, max_value=12))
def test_saturated_stride_survives_one_irregular_access(base, stride, warmup):
    """From a *saturated* counter a single irregular access must not destroy
    the stride: the counter drops 3 -> 2, still confident, and the stride
    field is only rewritten while the counter is below 2.  (Five warmup
    updates are enough to saturate even when the very first update is
    coincidentally correct and perturbs the trajectory.)"""
    predictor = StrideAddressPredictor(entries=16)
    pc = 0x400
    address = base
    for _ in range(warmup):
        predictor.update(pc, address)
        address += stride
    assert predictor.predict(pc).usable
    predictor.update(pc, address + 7_777_777)          # one wild access
    prediction = predictor.predict(pc)
    assert prediction.usable                           # 3 -> 2: still confident
    resumed = address + 7_777_777 + stride
    assert prediction.predicted_address == resumed     # stride preserved
