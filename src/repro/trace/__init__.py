"""Address traces: records, synthetic generators, workload models and I/O.

NumPy materialization lives in :mod:`repro.trace.batching`; it is deliberately
*not* imported here so that the scalar reference path (this package, the cache
models and the cpu simulator) stays importable without NumPy.
"""

from .generators import (
    interleave,
    matrix_traversal,
    multi_array_sweep,
    pointer_chase,
    random_accesses,
    strided_vector,
    tiled_matrix_multiply,
)
from .record import MemoryAccess, materialise, replay, trace_length
from .trace_io import (
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)
from .workloads import (
    FP_PROGRAMS,
    HIGH_CONFLICT_PROGRAMS,
    INTEGER_PROGRAMS,
    LOW_CONFLICT_PROGRAMS,
    WORKLOADS,
    WorkloadSpec,
    build_trace,
    workload_names,
)

__all__ = [
    "MemoryAccess",
    "trace_length",
    "materialise",
    "replay",
    "strided_vector",
    "multi_array_sweep",
    "matrix_traversal",
    "tiled_matrix_multiply",
    "pointer_chase",
    "random_accesses",
    "interleave",
    "write_text_trace",
    "read_text_trace",
    "write_binary_trace",
    "read_binary_trace",
    "WorkloadSpec",
    "WORKLOADS",
    "HIGH_CONFLICT_PROGRAMS",
    "LOW_CONFLICT_PROGRAMS",
    "INTEGER_PROGRAMS",
    "FP_PROGRAMS",
    "build_trace",
    "workload_names",
]
