"""Unit tests for the fully-associative, victim and column-associative caches."""

import pytest

from repro.cache.column_assoc import ColumnAssociativeCache
from repro.cache.fully_assoc import FullyAssociativeCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.victim import VictimCache
from repro.core.index import IPolyIndexing


class TestFullyAssociative:
    def test_no_conflict_misses_ever(self):
        cache = FullyAssociativeCache(1024, 32, classify_misses=True)
        # Blocks that would all collide in a direct-mapped cache.
        for _ in range(4):
            for i in range(16):
                cache.access(i * 4096)
        from repro.cache.stats import MissKind
        assert cache.stats.miss_kinds[MissKind.CONFLICT] == 0

    def test_capacity_eviction_is_lru(self):
        cache = FullyAssociativeCache(128, 32)   # 4 frames
        for block in range(5):                   # fifth block evicts block 0
            cache.access_block(block)
        assert not cache.contains_block(0)
        assert cache.contains_block(4)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            FullyAssociativeCache(100, 32)

    def test_beats_direct_mapped_on_conflict_pattern(self):
        direct = SetAssociativeCache(512, 32, 1)
        full = FullyAssociativeCache(512, 32)
        for _ in range(4):
            for i in range(8):
                direct.access(i * 512)
                full.access(i * 512)
        assert full.stats.miss_ratio < direct.stats.miss_ratio


class TestVictimCache:
    def test_victim_buffer_catches_conflict_evictions(self):
        # Direct-mapped 512 B main cache: blocks 0 and 16 collide in set 0.
        cache = VictimCache(512, 32, ways=1, victim_entries=4)
        cache.access(0)
        cache.access(16 * 32)    # evicts block 0 into the victim buffer
        result = cache.access(0)
        assert result.victim_hit
        assert not result.main_hit

    def test_main_hits_counted(self):
        cache = VictimCache(512, 32, ways=1, victim_entries=4)
        cache.access(0)
        assert cache.access(0).main_hit
        assert cache.main_hits == 1

    def test_miss_ratio_better_than_plain_direct_mapped(self):
        plain = SetAssociativeCache(512, 32, 1)
        victim = VictimCache(512, 32, ways=1, victim_entries=4)
        pattern = [0, 16 * 32, 0, 16 * 32] * 25
        for address in pattern:
            plain.access(address)
            victim.access(address)
        assert victim.miss_ratio < plain.stats.miss_ratio

    def test_victim_hit_ratio_property(self):
        cache = VictimCache(512, 32, ways=1, victim_entries=4)
        for address in [0, 16 * 32, 0, 16 * 32]:
            cache.access(address)
        assert 0.0 < cache.victim_hit_ratio < 1.0

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            VictimCache(512, 32, victim_entries=0)


class TestColumnAssociative:
    def make(self, size=1024, block=32):
        return ColumnAssociativeCache(size, block, address_bits=19)

    def test_first_access_misses_then_first_probe_hits(self):
        cache = self.make()
        assert not cache.access(0x40).hit
        result = cache.access(0x40)
        assert result.hit and result.first_probe_hit
        assert result.probes == 1

    def test_conflicting_blocks_coexist_via_rehash(self):
        cache = self.make()
        # Two blocks with the same primary index (1 KB cache = 32 frames).
        # Block numbers >= 32 are used so that the polynomial rehash location
        # differs from the primary location (for block numbers below the
        # frame count the two hashes coincide by construction).
        a, b = 32 * 32, 64 * 32
        cache.access_block(cache.block_number_of(a))
        cache.access_block(cache.block_number_of(b))
        # Re-access the first: it must still be resident (second probe), and
        # after the swap it should hit on the first probe next time.
        second = cache.access(a)
        assert second.hit
        assert second.second_probe_hit
        third = cache.access(a)
        assert third.first_probe_hit

    def test_average_probes_at_least_one(self):
        cache = self.make()
        for i in range(50):
            cache.access(i * 32)
        assert cache.average_probes >= 1.0

    def test_hit_time_increases_with_second_probes(self):
        cache = self.make()
        cache.access(32 * 32)
        cache.access(64 * 32)      # displaces block 32 to its rehash slot
        cache.access(32 * 32)      # second-probe hit
        assert cache.average_hit_time(1.0, 1.0) > 1.0

    def test_better_than_direct_mapped_on_conflicts(self):
        direct = SetAssociativeCache(1024, 32, 1)
        column = self.make()
        pattern = []
        for _ in range(20):
            pattern.extend([0, 32 * 32, 64 * 32])   # same primary frame
        for address in pattern:
            direct.access(address)
            column.access(address)
        assert column.stats.miss_ratio < direct.stats.miss_ratio

    def test_swap_can_be_disabled(self):
        cache = ColumnAssociativeCache(1024, 32, swap_on_rehash_hit=False,
                                       address_bits=19)
        cache.access(32 * 32)
        cache.access(64 * 32)
        result = cache.access(32 * 32)
        assert result.second_probe_hit
        again = cache.access(32 * 32)
        # Without swapping the block stays at its rehash location.
        assert again.second_probe_hit

    def test_custom_secondary_function_validation(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(1024, 32,
                                   secondary_index=IPolyIndexing(64, address_bits=14))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(1000, 32)
        with pytest.raises(ValueError):
            ColumnAssociativeCache(1024, 33)
