"""Unit tests for cache statistics and the 3C miss classifier."""

import pytest

from repro.cache.stats import CacheStats, MissClassifier, MissKind


class TestCacheStats:
    def test_initial_state(self):
        stats = CacheStats()
        assert stats.accesses == 0
        assert stats.miss_ratio == 0.0
        assert stats.load_miss_ratio == 0.0

    def test_counting(self):
        stats = CacheStats()
        stats.record_access(is_write=False, hit=True)
        stats.record_access(is_write=False, hit=False, miss_kind=MissKind.COMPULSORY)
        stats.record_access(is_write=True, hit=False, miss_kind=MissKind.CONFLICT)
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.load_misses == 1
        assert stats.store_misses == 1
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.miss_ratio == pytest.approx(2 / 3)
        assert stats.load_miss_ratio == pytest.approx(0.5)

    def test_miss_kind_breakdown(self):
        stats = CacheStats()
        stats.record_access(False, False, MissKind.CONFLICT)
        stats.record_access(False, False, MissKind.CONFLICT)
        stats.record_access(False, False, MissKind.CAPACITY)
        assert stats.miss_kinds[MissKind.CONFLICT] == 2
        assert stats.conflict_miss_ratio == pytest.approx(2 / 3)

    def test_unknown_miss_kind_rejected(self):
        with pytest.raises(ValueError):
            CacheStats().record_access(False, False, "weird")

    def test_reset(self):
        stats = CacheStats()
        stats.record_access(False, False, MissKind.COMPULSORY)
        stats.evictions = 5
        stats.reset()
        assert stats.accesses == 0
        assert stats.evictions == 0
        assert all(v == 0 for v in stats.miss_kinds.values())


class TestMissClassifier:
    def test_first_touch_is_compulsory(self):
        classifier = MissClassifier(capacity_blocks=4)
        assert classifier.classify(10, real_hit=False) == MissKind.COMPULSORY

    def test_hit_returns_none(self):
        classifier = MissClassifier(capacity_blocks=4)
        classifier.classify(10, real_hit=False)
        assert classifier.classify(10, real_hit=True) is None

    def test_conflict_when_shadow_would_hit(self):
        classifier = MissClassifier(capacity_blocks=4)
        classifier.classify(1, real_hit=False)
        classifier.classify(2, real_hit=False)
        # Block 1 is still in the 4-entry shadow cache, so a real miss on it
        # is a conflict miss.
        assert classifier.classify(1, real_hit=False) == MissKind.CONFLICT

    def test_capacity_when_shadow_also_misses(self):
        classifier = MissClassifier(capacity_blocks=2)
        for block in (1, 2, 3):          # pushes 1 out of the shadow LRU
            classifier.classify(block, real_hit=False)
        assert classifier.classify(1, real_hit=False) == MissKind.CAPACITY

    def test_shadow_lru_order_updates_on_hits(self):
        classifier = MissClassifier(capacity_blocks=2)
        classifier.classify(1, real_hit=False)
        classifier.classify(2, real_hit=False)
        classifier.classify(1, real_hit=True)    # refresh 1
        classifier.classify(3, real_hit=False)   # evicts 2, not 1
        assert classifier.classify(1, real_hit=False) == MissKind.CONFLICT
        assert classifier.classify(2, real_hit=False) == MissKind.CAPACITY

    def test_reset(self):
        classifier = MissClassifier(capacity_blocks=2)
        classifier.classify(1, real_hit=False)
        classifier.reset()
        assert classifier.classify(1, real_hit=False) == MissKind.COMPULSORY

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MissClassifier(0)
