"""Unit tests for the MSHR file (lockup-free cache support)."""

import pytest

from repro.cache.mshr import MSHRAllocation, MSHRFile


class TestAllocation:
    def test_new_entry(self):
        mshrs = MSHRFile(num_entries=2)
        assert mshrs.allocate(10, now=0) == MSHRAllocation.NEW
        assert mshrs.primary_misses == 1
        assert mshrs.occupancy == 1

    def test_merge_same_block(self):
        mshrs = MSHRFile(num_entries=2)
        mshrs.allocate(10, now=0, waiter=1)
        assert mshrs.allocate(10, now=1, waiter=2) == MSHRAllocation.MERGED
        assert mshrs.secondary_misses == 1
        assert mshrs.lookup(10).waiters == [1, 2]
        assert mshrs.occupancy == 1

    def test_full_file_stalls(self):
        mshrs = MSHRFile(num_entries=2)
        mshrs.allocate(1, now=0)
        mshrs.allocate(2, now=0)
        assert mshrs.is_full
        assert mshrs.allocate(3, now=0) == MSHRAllocation.FULL
        assert mshrs.structural_stalls == 1

    def test_merge_limit(self):
        mshrs = MSHRFile(num_entries=2, max_merged=2)
        mshrs.allocate(1, now=0, waiter=10)
        mshrs.allocate(1, now=0, waiter=11)
        assert mshrs.allocate(1, now=0, waiter=12) == MSHRAllocation.MERGE_FULL

    def test_paper_configuration_allows_8_outstanding_lines(self):
        mshrs = MSHRFile(num_entries=8)
        for block in range(8):
            assert mshrs.allocate(block, now=0) == MSHRAllocation.NEW
        assert mshrs.allocate(99, now=0) == MSHRAllocation.FULL


class TestCompletion:
    def test_completed_pops_ready_entries(self):
        mshrs = MSHRFile()
        mshrs.allocate(1, now=0, ready_at=10)
        mshrs.allocate(2, now=0, ready_at=20)
        done = mshrs.completed(now=15)
        assert [e.block_number for e in done] == [1]
        assert mshrs.occupancy == 1

    def test_set_ready_later(self):
        mshrs = MSHRFile()
        mshrs.allocate(1, now=0)
        assert mshrs.completed(now=100) == []
        mshrs.set_ready(1, ready_at=50)
        assert [e.block_number for e in mshrs.completed(now=60)] == [1]

    def test_set_ready_unknown_block(self):
        with pytest.raises(KeyError):
            MSHRFile().set_ready(7, 10)

    def test_release(self):
        mshrs = MSHRFile()
        mshrs.allocate(5, now=0)
        entry = mshrs.release(5)
        assert entry.block_number == 5
        assert mshrs.occupancy == 0
        with pytest.raises(KeyError):
            mshrs.release(5)

    def test_flush(self):
        mshrs = MSHRFile()
        mshrs.allocate(1, now=0)
        mshrs.allocate(2, now=0)
        mshrs.flush()
        assert mshrs.occupancy == 0
        assert mshrs.outstanding_blocks() == []


class TestValidation:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MSHRFile(num_entries=0)
        with pytest.raises(ValueError):
            MSHRFile(max_merged=0)
