"""Unit tests for the one-pass multi-configuration LRU profiler.

The differential suites (``test_engine_equivalence.py``,
``test_engine_properties.py``) pit the profiler against the batch kernels
and the scalar models over whole traces; this module covers the subsystem's
own semantics — reuse-distance arithmetic, the distance == ways boundary,
the capped priority-stack store handling, profile memoisation and the
plan's partitioning policy.
"""

import numpy as np
import pytest

from repro.cache.set_assoc import SetAssociativeCache, WritePolicy
from repro.core.index import SingleSetIndexing, make_index_function
from repro.engine import (
    AddressBatch,
    BatchSetAssociativeCache,
    MultiCapacityFIFOProfile,
    MultiConfigFIFOBuilder,
    MultiConfigFIFOProfile,
    MultiConfigLRUProfile,
    MultiConfigPlan,
    MultiConfigProfileBuilder,
    ProfileCounts,
    StackDistanceProfile,
    check_profile_mode,
    profile_cache_clear,
    profile_cache_info,
    run_lru_grid,
)
from repro.engine.multiconfig import PROFILE_AUTO_CAP_LIMIT
from repro.trace.batching import cached_workload_arrays

BLOCK = 32


def batch_of_blocks(blocks, writes=None):
    """A batch whose block numbers (at 32-byte lines) are ``blocks``."""
    addresses = np.array([b * BLOCK for b in blocks], dtype=np.uint64)
    return AddressBatch.from_arrays(addresses, writes)


def kernel_counts(batch, num_sets, ways,
                  write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                  replacement="lru"):
    cache = BatchSetAssociativeCache(num_sets * ways * BLOCK, BLOCK, ways,
                                     write_policy=write_policy,
                                     replacement=replacement)
    cache.run(batch)
    return ProfileCounts.from_stats(cache.stats)


class TestProfileCounts:
    def test_ratio_formulas_mirror_cache_stats(self):
        counts = ProfileCounts(loads=8, stores=2, load_misses=3, store_misses=1)
        assert counts.accesses == 10
        assert counts.misses == 4
        assert counts.hits == 6
        assert counts.miss_ratio == 4 / 10
        assert counts.load_miss_ratio == 3 / 8

    def test_empty_counts_have_zero_ratios(self):
        counts = ProfileCounts(loads=0, stores=0, load_misses=0, store_misses=0)
        assert counts.miss_ratio == 0.0
        assert counts.load_miss_ratio == 0.0

    def test_from_stats_round_trips_through_a_kernel_run(self):
        batch = batch_of_blocks([0, 1, 2, 0, 1, 2])
        counts = kernel_counts(batch, num_sets=1, ways=2)
        assert counts.loads == 6
        assert counts.accesses == 6


class TestStackDistanceProfile:
    def test_known_distances(self):
        # 0 1 2 0: two distinct blocks (1, 2) between the accesses to 0.
        profile = StackDistanceProfile.from_blocks(
            np.array([0, 1, 2, 0], dtype=np.int64))
        assert profile.distances.tolist() == [-1, -1, -1, 2]
        assert profile.cold_accesses == 3

    def test_duplicate_blocks_count_once(self):
        # 0 1 1 1 0: block 1 is one distinct block, not three.
        profile = StackDistanceProfile.from_blocks(
            np.array([0, 1, 1, 1, 0], dtype=np.int64))
        assert profile.distances.tolist() == [-1, -1, 0, 0, 1]

    def test_miss_counts_price_every_capacity(self):
        blocks = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)
        profile = StackDistanceProfile.from_blocks(blocks)
        # Cyclic over three blocks: distance 2 on every reuse.
        assert profile.miss_count(2) == 6   # thrashes below the footprint
        assert profile.miss_count(3) == 3   # compulsory only at capacity 3
        assert profile.miss_ratio(3) == 0.5

    def test_matches_fully_associative_kernel(self):
        rng = np.random.default_rng(7)
        blocks = rng.integers(0, 60, size=3000)
        batch = batch_of_blocks(blocks.tolist())
        profile = StackDistanceProfile.from_batch(batch, BLOCK)
        for capacity in (1, 2, 7, 16, 33, 64, 100):
            cache = BatchSetAssociativeCache(
                capacity * BLOCK, BLOCK, capacity,
                index_function=SingleSetIndexing())
            cache.run(batch)
            assert profile.miss_count(capacity) == cache.stats.load_misses

    def test_empty_profile(self):
        profile = StackDistanceProfile.from_blocks(np.empty(0, dtype=np.int64))
        assert profile.accesses == 0
        assert profile.miss_ratio(8) == 0.0

    def test_curve_is_monotone_nonincreasing(self):
        rng = np.random.default_rng(11)
        profile = StackDistanceProfile.from_blocks(
            rng.integers(0, 40, size=2000))
        curve = profile.miss_ratio_curve(range(1, 64))
        assert (np.diff(curve) <= 0).all()


class TestDistanceWaysBoundary:
    """The stack-distance boundary: distance == ways is exactly a miss."""

    def test_distance_equal_to_ways_misses(self):
        # Same set throughout (one set): the final access to 0 has stack
        # distance exactly 2.
        batch = batch_of_blocks([0, 1, 2, 0])
        profile = MultiConfigLRUProfile(batch, BLOCK, {1: 8})
        at_ways_2 = profile.miss_counts(1, 2)   # distance == ways -> miss
        at_ways_3 = profile.miss_counts(1, 3)   # distance < ways  -> hit
        assert at_ways_2.load_misses == 4
        assert at_ways_3.load_misses == 3
        # And the kernels agree on both sides of the boundary.
        assert at_ways_2 == kernel_counts(batch, 1, 2)
        assert at_ways_3 == kernel_counts(batch, 1, 3)

    def test_boundary_within_a_mapped_set(self):
        # Blocks 0, 4, 8, 12 all map to set 0 of a 4-set cache; the reuse
        # of 0 sits at distance 3: miss at 3 ways, hit at 4.
        batch = batch_of_blocks([0, 4, 8, 12, 0])
        profile = MultiConfigLRUProfile(batch, BLOCK, {4: 8})
        assert profile.miss_counts(4, 3).load_misses == 5
        assert profile.miss_counts(4, 4).load_misses == 4


class TestStoreHandling:
    """WTNA stores touch without allocating; WBA stores allocate."""

    def test_wtna_store_hit_refreshes_recency(self):
        # loads 0,1 fill a 2-way set LRU-ordered [0, 1]; a store *hit* on 0
        # must make 1 the LRU victim of the next fill.
        blocks = [0, 1, 0, 2, 0]
        writes = [False, False, True, False, False]
        batch = batch_of_blocks(blocks, writes)
        profile = MultiConfigLRUProfile(batch, BLOCK, {1: 4})
        counts = profile.miss_counts(1, 2)
        assert counts == kernel_counts(batch, 1, 2)
        # The final load of 0 hits only because the store refreshed it.
        assert counts.load_misses == 3

    def test_wtna_store_miss_does_not_allocate(self):
        blocks = [0, 1, 2, 1]
        writes = [True, False, False, False]
        batch = batch_of_blocks(blocks, writes)
        profile = MultiConfigLRUProfile(batch, BLOCK, {1: 4})
        counts = profile.miss_counts(1, 1)
        assert counts == kernel_counts(batch, 1, 1)
        assert counts.store_misses == 1

    def test_wba_store_allocates(self):
        blocks = [0, 1, 0]
        writes = [True, False, False]
        batch = batch_of_blocks(blocks, writes)
        profile = MultiConfigLRUProfile(
            batch, BLOCK, {1: 4},
            write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        assert profile.store_mode == "uniform"
        counts = profile.miss_counts(1, 2)
        assert counts == kernel_counts(
            batch, 1, 2, write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
        assert counts.load_misses == 1  # the store installed block 0

    def test_store_mode_selection(self):
        loads_only = batch_of_blocks([0, 1, 2])
        with_stores = batch_of_blocks([0, 1, 2], [True, False, False])
        assert MultiConfigLRUProfile(loads_only, BLOCK, {1: 2}).store_mode == "loads"
        assert MultiConfigLRUProfile(with_stores, BLOCK, {1: 2}).store_mode == "wtna"


class TestMultiConfigLRUProfile:
    def test_validates_geometry(self):
        batch = batch_of_blocks([0, 1])
        with pytest.raises(ValueError):
            MultiConfigLRUProfile(batch, BLOCK, {3: 2})   # not a power of two
        with pytest.raises(ValueError):
            MultiConfigLRUProfile(batch, BLOCK, {4: 0})   # no ways
        with pytest.raises(ValueError):
            MultiConfigLRUProfile(batch, BLOCK, {})       # no levels
        with pytest.raises(ValueError):
            MultiConfigLRUProfile(batch, BLOCK, {4: 2}, write_policy="bogus")

    def test_readout_guards(self):
        batch = batch_of_blocks([0, 1, 2])
        profile = MultiConfigLRUProfile(batch, BLOCK, {4: 2})
        with pytest.raises(KeyError):
            profile.miss_counts(8, 2)       # level never profiled
        with pytest.raises(ValueError):
            profile.miss_counts(4, 1000)    # beyond the depth cap

    def test_one_profile_serves_every_associativity(self):
        addresses, writes = cached_workload_arrays("swim", length=6000)
        batch = AddressBatch.from_arrays(addresses, writes)
        profile = MultiConfigLRUProfile(batch, BLOCK, {64: 8})
        for ways in range(1, 9):
            assert profile.miss_counts(64, ways) == kernel_counts(batch, 64, ways)

    def test_levels_are_memoised_per_trace(self):
        profile_cache_clear()
        addresses, writes = cached_workload_arrays("gcc", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        MultiConfigLRUProfile(batch, BLOCK, {64: 4})
        misses_after_first = profile_cache_info()["misses"]
        MultiConfigLRUProfile(batch, BLOCK, {64: 4})
        info = profile_cache_info()
        assert info["misses"] == misses_after_first
        assert info["hits"] >= 1

    def test_writable_inputs_are_not_memoised(self):
        profile_cache_clear()
        batch = batch_of_blocks(list(range(16)) * 4)
        assert batch.addresses.flags.writeable
        MultiConfigLRUProfile(batch, BLOCK, {4: 2})
        MultiConfigLRUProfile(batch, BLOCK, {4: 2})
        assert profile_cache_info()["entries"] == 0


class TestMultiConfigPlan:
    def test_mode_validation(self):
        assert check_profile_mode("Always ") == "always"
        with pytest.raises(ValueError):
            check_profile_mode("sometimes")
        with pytest.raises(ValueError):
            MultiConfigPlan(profile="sometimes")

    def test_profilable_predicate(self):
        batch = batch_of_blocks([0, 1, 2])
        conventional = BatchSetAssociativeCache(8192, BLOCK, 2)
        assert MultiConfigPlan.profilable(conventional, batch) == (128, 2)
        fully = BatchSetAssociativeCache(8192, BLOCK, 256,
                                         index_function=SingleSetIndexing())
        assert MultiConfigPlan.profilable(fully, batch) == (1, 256)
        skewed = BatchSetAssociativeCache(
            8192, BLOCK, 2, index_function=make_index_function(
                "a2-Hp-Sk", num_sets=128, ways=2, address_bits=19))
        assert MultiConfigPlan.profilable(skewed, batch) is None
        fifo = BatchSetAssociativeCache(8192, BLOCK, 2, replacement="fifo")
        assert MultiConfigPlan.profilable(fifo, batch) is None
        assert MultiConfigPlan.profilable_fifo(fifo, batch) == (128, 2)
        conventional_not_fifo = BatchSetAssociativeCache(8192, BLOCK, 2)
        assert MultiConfigPlan.profilable_fifo(
            conventional_not_fifo, batch) is None
        random_policy = BatchSetAssociativeCache(8192, BLOCK, 2,
                                                 replacement="random")
        assert MultiConfigPlan.profilable_fifo(random_policy, batch) is None
        classified = BatchSetAssociativeCache(8192, BLOCK, 2,
                                              classify_misses=True)
        assert MultiConfigPlan.profilable(classified, batch) is None
        warmed = BatchSetAssociativeCache(8192, BLOCK, 2)
        warmed.run(batch)
        warmed.reset_stats()
        assert MultiConfigPlan.profilable(warmed, batch) is None

    def test_every_mode_is_bit_exact(self):
        addresses, writes = cached_workload_arrays("tomcatv", length=5000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(num_sets, ways) for num_sets in (32, 64, 128)
                for ways in (1, 2, 4)]
        results = {mode: run_lru_grid(batch, BLOCK, grid, profile=mode)
                   for mode in ("auto", "always", "never")}
        assert results["auto"] == results["never"]
        assert results["always"] == results["never"]

    def test_auto_skips_singletons_and_deep_levels(self):
        batch = batch_of_blocks(list(range(64)) * 4)
        # A singleton group: auto must not profile it.
        profile_cache_clear()
        run_lru_grid(batch, BLOCK, [(64, 2)], profile="auto")
        assert profile_cache_info()["misses"] == 0
        # A too-deep configuration stays on its kernel under auto, and with
        # only a singleton left the group is not profiled at all.
        deep = [(1, PROFILE_AUTO_CAP_LIMIT * 2), (1, 2)]
        profile_cache_clear()
        run_lru_grid(batch, BLOCK, deep, profile="auto")
        assert profile_cache_info()["misses"] == 0
        assert (run_lru_grid(batch, BLOCK, deep, profile="always")
                == run_lru_grid(batch, BLOCK, deep, profile="never"))

    def test_auto_excludes_deep_members_without_vetoing_the_group(self):
        """A deep organisation must not stop its shallow group members
        from profiling (regression: group-level veto)."""
        # A read-only cached trace, so profile passes land in the memo and
        # the pass count is observable.
        addresses, writes = cached_workload_arrays("li", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(1, PROFILE_AUTO_CAP_LIMIT * 2), (64, 2), (64, 4)]
        profile_cache_clear()
        auto = run_lru_grid(batch, BLOCK, grid, profile="auto")
        # The two shallow 64-set rows share one profiled level; the deep
        # fully-associative row ran its kernel.
        assert profile_cache_info()["misses"] == 1
        assert auto == run_lru_grid(batch, BLOCK, grid, profile="never")

    def test_groups_share_one_pass_per_level(self):
        profile_cache_clear()
        addresses, writes = cached_workload_arrays("gcc", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(64, w) for w in (1, 2, 3, 4, 5, 6, 7, 8)]
        run_lru_grid(batch, BLOCK, grid, profile="always")
        info = profile_cache_info()
        assert info["misses"] == 1  # eight configurations, one level pass

    def test_mixed_plan_keeps_kernel_tasks_on_their_kernels(self):
        addresses, writes = cached_workload_arrays("gcc", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        plan = MultiConfigPlan(profile="always")
        plan.add("conv", batch, lambda: BatchSetAssociativeCache(8192, BLOCK, 2))
        plan.add("skew", batch, lambda: BatchSetAssociativeCache(
            8192, BLOCK, 2, index_function=make_index_function(
                "a2-Hp-Sk", num_sets=128, ways=2, address_bits=19)))
        results = plan.run()
        reference = BatchSetAssociativeCache(8192, BLOCK, 2)
        reference.run(batch)
        assert results["conv"] == ProfileCounts.from_stats(reference.stats)
        skewed = BatchSetAssociativeCache(
            8192, BLOCK, 2, index_function=make_index_function(
                "a2-Hp-Sk", num_sets=128, ways=2, address_bits=19))
        skewed.run(batch)
        assert results["skew"] == ProfileCounts.from_stats(skewed.stats)

    def test_custom_runner_drives_fallback_tasks(self):
        batch = batch_of_blocks([0, 1, 0, 1])
        seen = []

        def runner(cache, batch_):
            seen.append(cache)
            cache.run(batch_)

        plan = MultiConfigPlan(profile="never")
        plan.add("row", batch, lambda: BatchSetAssociativeCache(1024, BLOCK, 2),
                 runner=runner)
        results = plan.run()
        assert len(seen) == 1
        assert results["row"].loads == 4

    def test_shared_addresses_with_different_store_masks_do_not_alias(self):
        """Two batches over one address array but different store masks
        must not share a profile group — their WTNA store-touch behaviour
        differs."""
        addresses = np.array([b * BLOCK for b in [0, 1, 0, 2, 0]],
                             dtype=np.uint64)
        hot_store = AddressBatch.from_arrays(
            addresses, [False, False, True, False, False])
        all_loads_mask = AddressBatch.from_arrays(
            addresses, [False] * 5)
        plan = MultiConfigPlan(profile="always")
        plan.add("stores", hot_store, lambda: BatchSetAssociativeCache(
            2 * BLOCK, BLOCK, 2))
        plan.add("loads", all_loads_mask, lambda: BatchSetAssociativeCache(
            2 * BLOCK, BLOCK, 2))
        results = plan.run()
        assert results["stores"] == kernel_counts(hot_store, 1, 2)
        assert results["loads"] == kernel_counts(all_loads_mask, 1, 2)
        assert results["stores"] != results["loads"]

    def test_profile_never_runs_every_kernel(self):
        """``profile="never"`` must produce the same numbers with zero
        profile passes — every configuration on its own kernel."""
        addresses, writes = cached_workload_arrays("li", length=3000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(num_sets, ways) for num_sets in (16, 64) for ways in (1, 2, 4)]
        profile_cache_clear()
        never = run_lru_grid(batch, BLOCK, grid, profile="never")
        assert profile_cache_info()["misses"] == 0
        assert profile_cache_info()["hits"] == 0
        for (num_sets, ways), counts in never.items():
            assert counts == kernel_counts(batch, num_sets, ways)

    def test_empty_trace_grid(self):
        """A 0-access batch prices to all-zero counters in every mode."""
        batch = batch_of_blocks([])
        grid = [(16, 2), (64, 4)]
        zero = ProfileCounts(loads=0, stores=0, load_misses=0, store_misses=0)
        for mode in ("auto", "always", "never", "sampled"):
            results = run_lru_grid(batch, BLOCK, grid, profile=mode)
            assert results == {key: zero for key in grid}, mode
        fifo = run_lru_grid(batch, BLOCK, grid, profile="always",
                            replacement="fifo")
        assert fifo == {key: zero for key in grid}

    def test_grid_against_scalar_models(self):
        addresses, writes = cached_workload_arrays("compress", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(num_sets, ways) for num_sets in (16, 64) for ways in (1, 3, 8)]
        results = run_lru_grid(batch, BLOCK, grid, profile="always")
        for (num_sets, ways), counts in results.items():
            scalar = SetAssociativeCache(num_sets * ways * BLOCK, BLOCK, ways)
            for address, is_write in zip(batch.addresses.tolist(),
                                         batch.is_write.tolist()):
                scalar.access(address, is_write=is_write)
            assert counts == ProfileCounts.from_stats(scalar.stats), (
                num_sets, ways)

class TestMultiConfigFIFOProfile:
    """The single-pass FIFO grid: miss-driven event replays vs kernels."""

    def test_validates_geometry_and_policy(self):
        batch = batch_of_blocks([0, 1])
        with pytest.raises(ValueError):
            MultiConfigFIFOProfile(batch, BLOCK, {3: 2})  # not a power of two
        with pytest.raises(ValueError):
            MultiConfigFIFOProfile(batch, BLOCK, {})      # no levels
        with pytest.raises(ValueError):
            MultiConfigFIFOProfile(batch, BLOCK, {4: 2}, write_policy="bogus")

    def test_readout_guards(self):
        batch = batch_of_blocks([0, 1, 2])
        profile = MultiConfigFIFOProfile(batch, BLOCK, {4: 2})
        with pytest.raises(KeyError):
            profile.miss_counts(8, 2)     # level never declared
        with pytest.raises(ValueError):
            profile.miss_counts(4, 3)     # beyond the declared depth cap
        with pytest.raises(ValueError):
            profile.miss_counts(4, 0)

    def test_beladys_anomaly_is_reproduced(self):
        """FIFO is not a stack algorithm: the classic anomaly trace misses
        *more* at four frames than at three — the per-capacity event
        replays must reproduce it (a stack-style readout cannot)."""
        anomaly = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        batch = batch_of_blocks(anomaly)
        profile = MultiConfigFIFOProfile(batch, BLOCK, {1: 4})
        assert profile.miss_counts(1, 3).misses == 9
        assert profile.miss_counts(1, 4).misses == 10

    def test_matches_kernels_across_grid_and_policies(self):
        addresses, writes = cached_workload_arrays("gcc", length=6000)
        batch = AddressBatch.from_arrays(addresses, writes)
        for policy in (WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
                       WritePolicy.WRITE_BACK_ALLOCATE):
            profile = MultiConfigFIFOProfile(batch, BLOCK, {16: 8, 64: 8},
                                             write_policy=policy)
            for num_sets in (16, 64):
                for ways in (1, 2, 3, 4, 8):
                    assert (profile.miss_counts(num_sets, ways)
                            == kernel_counts(batch, num_sets, ways,
                                             write_policy=policy,
                                             replacement="fifo")), (
                        policy, num_sets, ways)

    def test_loads_only_stream(self):
        batch = batch_of_blocks([0, 1, 2, 0, 1, 2, 3, 0])
        profile = MultiConfigFIFOProfile(batch, BLOCK, {1: 4})
        assert profile.store_mode == "loads"
        assert profile.miss_counts(1, 3) == kernel_counts(
            batch, 1, 3, replacement="fifo")

    def test_empty_trace(self):
        profile = MultiConfigFIFOProfile(batch_of_blocks([]), BLOCK, {4: 2})
        assert profile.accesses == 0
        assert profile.miss_counts(4, 2).miss_ratio == 0.0

    def test_builder_chunked_equals_one_shot(self):
        addresses, writes = cached_workload_arrays("m88ksim", length=9000)
        batch = AddressBatch.from_arrays(addresses, writes)
        one_shot = MultiConfigFIFOProfile(batch, BLOCK, {64: 4})
        builder = MultiConfigFIFOBuilder(BLOCK, {64: 4}, has_stores=True)
        for start in range(0, 9000, 1234):
            builder.feed(AddressBatch.from_arrays(
                addresses[start:start + 1234], writes[start:start + 1234]))
        chunked = builder.finish()
        for ways in (1, 2, 4):
            assert (chunked.miss_counts(64, ways)
                    == one_shot.miss_counts(64, ways))

    def test_builder_rejects_mid_stream_store_mode_change(self):
        builder = MultiConfigFIFOBuilder(BLOCK, {16: 2}, has_stores=False)
        builder.feed(batch_of_blocks([0, 1, 2]))
        with pytest.raises(ValueError, match="store mode changed mid-stream"):
            builder.feed(batch_of_blocks([3, 4], [True, False]))


class TestMultiCapacityFIFOProfile:
    def test_validates_capacities(self):
        blocks = np.array([0, 1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            MultiCapacityFIFOProfile(blocks, [])
        with pytest.raises(ValueError):
            MultiCapacityFIFOProfile(blocks, [0, 4])

    def test_matches_fully_associative_fifo_kernel(self):
        rng = np.random.default_rng(17)
        blocks = rng.integers(0, 80, size=4000)
        batch = batch_of_blocks(blocks.tolist())
        capacities = [1, 2, 7, 16, 33, 64, 100]
        profile = MultiCapacityFIFOProfile(blocks, capacities)
        for capacity in capacities:
            cache = BatchSetAssociativeCache(
                capacity * BLOCK, BLOCK, capacity,
                index_function=SingleSetIndexing(), replacement="fifo")
            cache.run(batch)
            assert profile.miss_count(capacity) == cache.stats.misses
            assert profile.hit_count(capacity) == cache.stats.hits

    def test_curve_and_guards(self):
        blocks = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)
        profile = MultiCapacityFIFOProfile(blocks, [2, 3])
        assert profile.miss_count(2) == 6    # thrashes below the footprint
        assert profile.miss_count(3) == 3    # compulsory only
        assert profile.miss_ratio(3) == 0.5
        assert profile.miss_ratio_curve().tolist() == [1.0, 0.5]
        with pytest.raises(KeyError):
            profile.miss_count(4)            # capacity not declared

    def test_from_batch_and_empty_stream(self):
        batch = batch_of_blocks([0, 1, 0])
        profile = MultiCapacityFIFOProfile.from_batch(batch, BLOCK, [2])
        assert profile.miss_count(2) == 2
        empty = MultiCapacityFIFOProfile(np.empty(0, dtype=np.int64), [4])
        assert empty.miss_ratio(4) == 0.0


class TestFIFOPlanRouting:
    """MultiConfigPlan must price FIFO grids off the one-pass profile,
    bit-exact with per-config kernels in every profiled mode."""

    def test_fifo_grid_every_mode_is_bit_exact(self):
        addresses, writes = cached_workload_arrays("compress", length=5000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(num_sets, ways) for num_sets in (32, 128)
                for ways in (1, 2, 4)]
        results = {mode: run_lru_grid(batch, BLOCK, grid, profile=mode,
                                      replacement="fifo")
                   for mode in ("auto", "always", "never", "sampled")}
        assert results["always"] == results["never"]
        assert results["auto"] == results["never"]
        # FIFO tasks have no sampled path: "sampled" prices them exactly.
        assert results["sampled"] == results["never"]

    def test_fifo_grid_against_scalar_models(self):
        addresses, writes = cached_workload_arrays("li", length=3000)
        batch = AddressBatch.from_arrays(addresses, writes)
        grid = [(16, 2), (64, 1), (64, 4)]
        results = run_lru_grid(batch, BLOCK, grid, profile="always",
                               replacement="fifo")
        for (num_sets, ways), counts in results.items():
            scalar = SetAssociativeCache(num_sets * ways * BLOCK, BLOCK,
                                         ways, replacement="fifo")
            for address, is_write in zip(batch.addresses.tolist(),
                                         batch.is_write.tolist()):
                scalar.access(address, is_write=is_write)
            assert counts == ProfileCounts.from_stats(scalar.stats), (
                num_sets, ways)

    def test_mixed_lru_and_fifo_plan(self):
        """LRU and FIFO tasks over one batch group separately, each priced
        by its own profile kind, both exact."""
        addresses, writes = cached_workload_arrays("go", length=4000)
        batch = AddressBatch.from_arrays(addresses, writes)
        plan = MultiConfigPlan(profile="always")
        for ways in (1, 2, 4):
            plan.add(("lru", ways), batch,
                     lambda ways=ways: BatchSetAssociativeCache(
                         64 * ways * BLOCK, BLOCK, ways))
            plan.add(("fifo", ways), batch,
                     lambda ways=ways: BatchSetAssociativeCache(
                         64 * ways * BLOCK, BLOCK, ways, replacement="fifo"))
        results = plan.run()
        for ways in (1, 2, 4):
            assert results[("lru", ways)] == kernel_counts(batch, 64, ways)
            assert results[("fifo", ways)] == kernel_counts(
                batch, 64, ways, replacement="fifo")


class TestExactBuilderStoreModeGuard:
    """Regression: chunks disagreeing on has_stores must raise a clear
    error up front, not silently drift the profile's stats."""

    def test_exact_builder_rejects_mid_stream_store_mode_change(self):
        builder = MultiConfigProfileBuilder(BLOCK, {16: 2}, has_stores=False)
        builder.feed(batch_of_blocks([0, 1, 2]))
        with pytest.raises(ValueError) as err:
            builder.feed(batch_of_blocks([3, 4], [True, False]))
        message = str(err.value)
        assert "store mode changed mid-stream" in message
        assert "after 3 accesses" in message
        assert "has_stores=True" in message   # the message names the fix

    def test_declared_stores_accept_any_chunk_mix(self):
        builder = MultiConfigProfileBuilder(BLOCK, {16: 2}, has_stores=True)
        builder.feed(batch_of_blocks([0, 1, 2]))                # all loads
        builder.feed(batch_of_blocks([3, 4], [True, False]))    # mixed
        assert builder.finish().miss_counts(16, 2).accesses == 5
