"""Two-level virtual-real cache hierarchy (Wang, Baer & Levy, ISCA 1989).

The paper identifies this organisation as the most promising way to deploy
I-Poly indexing at L1: the first-level cache is virtually indexed and
virtually tagged (so the index function can use as many address bits as it
likes without waiting for translation), while the second level is physically
indexed and tagged.  The protocol between the two levels provides:

* translation — L1 misses are translated once on the way to L2;
* alias control — at most one virtual alias of any physical line may be
  resident in L1 at a time;
* Inclusion — when L2 evicts a physical line, any L1 copy is invalidated,
  creating a *hole* (Section 3.3).

Because the L1 index is computed from virtual addresses with one pseudo-random
function and the L2 index from physical addresses with another, the two
indices are uncorrelated; the analytical hole model in
:mod:`repro.models.holes` captures exactly this situation and the simulator
below measures it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .set_assoc import SetAssociativeCache

__all__ = ["VirtualRealAccessResult", "VirtualRealHierarchy"]


@dataclass
class VirtualRealAccessResult:
    """Outcome of one access to a :class:`VirtualRealHierarchy`."""

    virtual_block: int
    physical_block: int
    l1_hit: bool
    l2_hit: bool
    alias_invalidation: bool = False
    hole_created: bool = False

    @property
    def memory_access(self) -> bool:
        """True when the request went to main memory."""
        return not self.l1_hit and not self.l2_hit


class VirtualRealHierarchy:
    """Virtually-indexed L1 over a physically-indexed, inclusive L2.

    Parameters
    ----------
    l1:
        Virtually-indexed first-level cache (any placement function).
    l2:
        Physically-indexed second-level cache.  Must use the same block size
        as L1 (the Wang-style protocol keeps the mapping one-to-one).
    translate:
        Callable mapping a virtual byte address to a physical byte address
        (typically :meth:`repro.memory.translation.AddressTranslator.translate`).
    page_size:
        Optional page size (bytes) of the translation behind ``translate``.
        When given, it is validated against the cache geometry — the same
        rules the batch twin derives from its page table — and exposed as
        :attr:`page_size`; translation itself still goes through
        ``translate``.
    """

    def __init__(
        self,
        l1: SetAssociativeCache,
        l2: SetAssociativeCache,
        translate: Callable[[int], int],
        page_size: Optional[int] = None,
    ) -> None:
        if l1.block_size != l2.block_size:
            raise ValueError(
                "the virtual-real protocol requires equal L1/L2 block sizes "
                f"({l1.block_size} vs {l2.block_size})"
            )
        if l2.size_bytes < l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")
        if page_size is not None:
            if page_size < 1 or page_size & (page_size - 1):
                raise ValueError(
                    f"page_size must be a power of two, got {page_size}")
            if page_size < l1.block_size or page_size % l1.block_size:
                raise ValueError(
                    "page_size must be a multiple of the cache block size "
                    f"({page_size} vs {l1.block_size})"
                )
        self.l1 = l1
        self.l2 = l2
        self._translate = translate
        self._page_size = page_size
        # Forward/reverse maps between the virtual line resident in L1 and
        # its physical line; this is the "pointer" state the Wang protocol
        # keeps so physically-addressed events can find the L1 copy without
        # reverse translation hardware.
        self._virt_of_phys: Dict[int, int] = {}
        self._phys_of_virt: Dict[int, int] = {}

        self.alias_invalidations = 0
        self.holes_created = 0
        self.l2_misses_causing_holes = 0
        self.external_invalidations = 0

    # ------------------------------------------------------------------ #

    @property
    def page_size(self) -> Optional[int]:
        """Declared page size of the translation, when one was given."""
        return self._page_size

    def access(self, virtual_address: int, is_write: bool = False) -> VirtualRealAccessResult:
        """Perform one access using a virtual address."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        virt_block = self.l1.block_number_of(virtual_address)
        physical_address = self._translate(virtual_address)
        phys_block = self.l2.block_number_of(physical_address)

        # Alias control: if this physical line is already resident under a
        # different virtual address, remove that alias first.
        alias_invalidation = False
        resident_virt = self._virt_of_phys.get(phys_block)
        if resident_virt is not None and resident_virt != virt_block:
            if self.l1.invalidate_block(resident_virt):
                alias_invalidation = True
                self.alias_invalidations += 1
            self._unmap(resident_virt)

        l1_result = self.l1.access_block(virt_block, is_write=is_write)
        if l1_result.hit:
            if is_write:
                # Write-through L1: the write is forwarded to L2.
                self.l2.access_block(phys_block, is_write=True)
            return VirtualRealAccessResult(virt_block, phys_block, True, True,
                                           alias_invalidation=alias_invalidation)

        # L1 miss.  If the miss allocated a frame, maintain the maps —
        # including dropping the mapping of whatever L1 line was evicted.
        if l1_result.evicted_block is not None:
            self._unmap(l1_result.evicted_block)
        if l1_result.way is not None:
            self._map(virt_block, phys_block)

        l2_result = self.l2.access_block(phys_block, is_write=is_write)
        hole = False
        if not l2_result.hit and l2_result.evicted_block is not None:
            hole = self._handle_l2_eviction(l2_result.evicted_block,
                                            filling_virt_block=virt_block)
            if hole:
                self.l2_misses_causing_holes += 1
        return VirtualRealAccessResult(virt_block, phys_block, False, l2_result.hit,
                                       alias_invalidation=alias_invalidation,
                                       hole_created=hole)

    def external_invalidate(self, physical_address: int) -> bool:
        """Handle a physically-addressed coherence invalidation.

        Returns True when an L1 line had to be invalidated.  (The L2 line is
        always invalidated.)  This is the third hole source listed in
        Section 3.3; it is counted separately because it occurs regardless of
        the indexing scheme.
        """
        phys_block = self.l2.block_number_of(physical_address)
        self.l2.invalidate_block(phys_block)
        virt_block = self._virt_of_phys.get(phys_block)
        if virt_block is None:
            return False
        invalidated = self.l1.invalidate_block(virt_block)
        self._unmap(virt_block)
        if invalidated:
            self.external_invalidations += 1
        return invalidated

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _map(self, virt_block: int, phys_block: int) -> None:
        self._phys_of_virt[virt_block] = phys_block
        self._virt_of_phys[phys_block] = virt_block

    def _unmap(self, virt_block: int) -> None:
        phys = self._phys_of_virt.pop(virt_block, None)
        if phys is not None and self._virt_of_phys.get(phys) == virt_block:
            del self._virt_of_phys[phys]

    def _handle_l2_eviction(self, evicted_phys_block: int,
                            filling_virt_block: Optional[int]) -> bool:
        """Back-invalidate the L1 copy of an evicted L2 line, if present."""
        virt_block = self._virt_of_phys.get(evicted_phys_block)
        if virt_block is None:
            return False
        invalidated = self.l1.invalidate_block(virt_block)
        self._unmap(virt_block)
        if not invalidated:
            return False
        if filling_virt_block is not None and virt_block == filling_virt_block:
            # The line being removed is the one being replaced anyway; no hole.
            return False
        self.holes_created += 1
        self.l1.stats.holes_created += 1
        return True

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def hole_rate_per_l2_miss(self) -> float:
        """Fraction of L2 misses that created an L1 hole."""
        misses = self.l2.stats.misses
        return self.l2_misses_causing_holes / misses if misses else 0.0

    def check_inclusion(self) -> bool:
        """Verify that every valid L1 line's physical image is present in L2."""
        l2_resident = set(self.l2.resident_blocks())
        for virt_block in self.l1.resident_blocks():
            phys_block = self._phys_of_virt.get(virt_block)
            if phys_block is None or phys_block not in l2_resident:
                return False
        return True

    def flush(self) -> None:
        """Empty both levels and the alias maps."""
        self.l1.flush()
        self.l2.flush()
        self._virt_of_phys.clear()
        self._phys_of_virt.clear()
