"""E-CA: Section 3.1 option 4 — column-associative cache with polynomial rehash.

Paper claim: with line swapping between the conventional and polynomial
locations, about 90% of hits are detected on the first probe, so the average
hit time is only slightly above one probe.
"""

import pytest

from repro.experiments.column_assoc_study import run_column_assoc_study


@pytest.mark.benchmark(group="column-assoc")
def test_first_probe_hit_probability(benchmark, bench_accesses):
    result = benchmark.pedantic(
        lambda: run_column_assoc_study(accesses=bench_accesses),
        rounds=1, iterations=1)

    print()
    print(result.render())

    # Around 90% (or better) of hits land on the first probe.
    assert result.mean_first_probe_hit_ratio() > 0.85
    # The suite-average hit time is therefore close to a single probe; the
    # worst individual program (the heavily conflicting swim model, which
    # ping-pongs lines between its two locations) stays below 1.5 probes.
    from repro.analysis.metrics import arithmetic_mean
    assert arithmetic_mean(list(result.average_hit_time.values())) < 1.2
    for program, hit_time in result.average_hit_time.items():
        assert 1.0 <= hit_time < 1.5, program
    # Probes per access stay well below 2 (most accesses hit first time).
    for program, probes in result.average_probes.items():
        assert probes < 1.9, program
