"""Experiment E-F1: Figure 1 — stride sensitivity of the indexing schemes.

The paper drives four otherwise-identical 8 KB, 32-byte-block, two-way caches
with "repeated accesses to a vector of 64 8-byte elements in which the
elements were separated by stride S", for every stride in ``1 <= S < 4096``,
and plots the frequency distribution of the resulting miss ratios per
indexing scheme.  The headline observations are:

* most strides behave well under every scheme;
* the conventional (``a2``) and skewed-XOR (``a2-Hx-Sk``) schemes are
  pathological (miss ratio > 50%) on more than 6% of strides;
* the skewed I-Poly scheme (``a2-Hp-Sk``) has no pathological strides at all.

:func:`run_figure1` reproduces the sweep and returns one
:class:`~repro.analysis.histograms.MissRatioHistogram` per scheme plus the
pathological-stride fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.histograms import MissRatioHistogram
from ..trace.generators import strided_vector
from .config import INDEX_SCHEMES, PAPER_L1_8KB, CacheGeometry, build_cache

__all__ = ["Figure1Result", "stride_miss_ratio", "run_figure1"]


@dataclass
class Figure1Result:
    """Outcome of the Figure 1 sweep."""

    geometry: CacheGeometry
    strides: int
    histograms: Dict[str, MissRatioHistogram] = field(default_factory=dict)
    miss_ratios: Dict[str, List[float]] = field(default_factory=dict)

    def pathological_fraction(self, scheme: str, threshold: float = 0.5) -> float:
        """Fraction of strides whose miss ratio exceeds ``threshold``."""
        return self.histograms[scheme].fraction_above(threshold)

    def summary(self, threshold: float = 0.5) -> Dict[str, float]:
        """Pathological-stride fraction per scheme."""
        return {scheme: self.pathological_fraction(scheme, threshold)
                for scheme in self.histograms}

    def render(self) -> str:
        """Human-readable rendering of all histograms plus the summary."""
        parts = [h.render() for h in self.histograms.values()]
        parts.append("pathological strides (miss ratio > 50%):")
        for scheme, fraction in self.summary().items():
            parts.append(f"  {scheme:10s} {100 * fraction:6.2f}%")
        return "\n\n".join(parts)


def stride_miss_ratio(scheme: str, stride: int,
                      geometry: CacheGeometry = PAPER_L1_8KB,
                      elements: int = 64, element_size: int = 8,
                      sweeps: int = 8, address_bits: int = 19) -> float:
    """Miss ratio of one (scheme, stride) pair under the Figure 1 workload.

    ``sweeps`` controls how many times the vector is traversed; the first
    sweep's compulsory misses are amortised over the rest, as in the paper's
    "repeated accesses".
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    cache = build_cache(geometry, scheme, address_bits=address_bits)
    for access in strided_vector(stride, elements=elements,
                                 element_size=element_size, sweeps=sweeps):
        cache.access(access.address, access.is_write)
    return cache.stats.miss_ratio


def run_figure1(max_stride: int = 4096,
                schemes: Optional[Sequence[str]] = None,
                geometry: CacheGeometry = PAPER_L1_8KB,
                elements: int = 64, sweeps: int = 8,
                stride_step: int = 1) -> Figure1Result:
    """Run the Figure 1 stride sweep.

    Parameters
    ----------
    max_stride:
        Upper bound of the stride range (exclusive); the paper uses 4096.
    schemes:
        Index schemes to evaluate (defaults to the four of Figure 1).
    stride_step:
        Evaluate every ``stride_step``-th stride — useful to subsample the
        sweep in quick runs while keeping full coverage in the benchmark.
    """
    if max_stride < 2:
        raise ValueError("max_stride must be at least 2")
    if stride_step < 1:
        raise ValueError("stride_step must be positive")
    schemes = list(schemes) if schemes is not None else list(INDEX_SCHEMES)

    strides = range(1, max_stride, stride_step)
    result = Figure1Result(geometry=geometry, strides=len(strides))
    for scheme in schemes:
        histogram = MissRatioHistogram(label=scheme)
        ratios: List[float] = []
        for stride in strides:
            ratio = stride_miss_ratio(scheme, stride, geometry=geometry,
                                      elements=elements, sweeps=sweeps)
            ratios.append(ratio)
            histogram.add(ratio)
        result.histograms[scheme] = histogram
        result.miss_ratios[scheme] = ratios
    return result
