"""Experiment E-HOLE: Inclusion holes — analytical model versus simulation.

Section 3.3 argues that the holes punched into L1 by Inclusion maintenance
are rare enough to ignore.  Two quantitative claims are made:

* the analytical model (equations vii-ix) gives ``P_H ~= 0.031`` for an 8 KB
  L1 backed by a 256 KB L2 with 32-byte lines — "slightly more than 3% of L2
  misses will result in the creation of a hole";
* whole-Spec95 simulations with an 8 KB two-way skewed I-Poly L1 over a 1 MB
  conventional two-way L2 show that the percentage of L2 misses creating a
  hole "averaged less than 0.1% and was never greater than 1.2%".

This driver measures the hole rate with the
:class:`~repro.cache.virtual_real.VirtualRealHierarchy` simulator across a
sweep of L2 sizes and compares it with :class:`~repro.models.holes.HoleModel`.
Note that the analytical model assumes direct-mapped levels and completely
uncorrelated indices, so it is an *upper-bound-flavoured* estimate; the
simulated two-way hierarchy typically sits below it, which is exactly the
relationship the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import TableBuilder
from ..cache.set_assoc import WritePolicy
from ..cache.virtual_real import VirtualRealHierarchy
from ..engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    batch_virtual_real_like,
    materialise_batch,
    check_engine,
)
from ..memory.paging import PageTable
from ..models.holes import HoleModel
from ..trace.workloads import build_trace, workload_names
from .config import PAPER_HASH_BITS, CacheGeometry, build_cache

__all__ = ["HoleStudyResult", "run_holes_study"]


@dataclass
class HoleStudyResult:
    """Hole statistics per L2 size (bytes)."""

    l1_geometry: CacheGeometry
    accesses_per_program: int
    predicted_hole_probability: Dict[int, float] = field(default_factory=dict)
    simulated_hole_rate: Dict[int, float] = field(default_factory=dict)
    per_program_hole_rate: Dict[int, Dict[str, float]] = field(default_factory=dict)
    l2_misses: Dict[int, int] = field(default_factory=dict)

    @property
    def l2_sizes(self) -> List[int]:
        """The L2 sizes swept, in bytes."""
        return list(self.predicted_hole_probability)

    def max_program_hole_rate(self, l2_size: int) -> float:
        """Worst per-program hole rate for one L2 size."""
        rates = self.per_program_hole_rate.get(l2_size, {})
        return max(rates.values()) if rates else 0.0

    def table(self) -> TableBuilder:
        """Summary table: model P_H vs simulated hole rate per L2 size."""
        table = TableBuilder(["model P_H", "simulated", "worst program", "L2 misses"],
                             row_label="L2 size")
        for size in self.l2_sizes:
            table.add_row(f"{size // 1024}KB", {
                "model P_H": self.predicted_hole_probability[size],
                "simulated": self.simulated_hole_rate[size],
                "worst program": self.max_program_hole_rate(size),
                "L2 misses": self.l2_misses[size],
            })
        return table

    def render(self) -> str:
        """Render the summary table."""
        return self.table().render(precision=4,
                                   title="Holes per L2 miss: model vs simulation")


def run_holes_study(l2_sizes: Sequence[int] = (256 * 1024, 1024 * 1024),
                    programs: Optional[Sequence[str]] = None,
                    accesses: int = 30_000,
                    l1_geometry: CacheGeometry = CacheGeometry(8 * 1024),
                    page_size: int = 4096,
                    seed: int = 999,
                    engine: str = ENGINE_REFERENCE) -> HoleStudyResult:
    """Measure hole rates over a sweep of L2 sizes.

    The L1 is a skewed I-Poly cache indexed by virtual addresses; the L2 is a
    conventional two-way cache indexed by physical addresses obtained from a
    scatter-allocating page table, so the two indices are uncorrelated as the
    analytical model assumes.

    ``engine="vectorized"`` runs each program through
    :class:`~repro.engine.hierarchy_vec.BatchVirtualRealHierarchy` —
    batched translation, miss-stream composition and all — instead of the
    per-access scalar protocol; both engines produce identical counters, so
    the reported hole rates are the same numbers, just faster.
    """
    engine = check_engine(engine)
    program_list = list(programs) if programs is not None else workload_names()
    result = HoleStudyResult(l1_geometry=l1_geometry,
                             accesses_per_program=accesses)

    for l2_size in l2_sizes:
        model = HoleModel(l1_bytes=l1_geometry.size_bytes, l2_bytes=l2_size,
                          block_size=l1_geometry.block_size)
        result.predicted_hole_probability[l2_size] = model.hole_probability

        total_holes = 0
        total_l2_misses = 0
        per_program: Dict[str, float] = {}
        for name in program_list:
            page_table = PageTable(page_size=page_size, allocation="scatter",
                                   seed=seed)
            l1 = build_cache(l1_geometry, "a2-Hp-Sk",
                             address_bits=PAPER_HASH_BITS)
            l2 = build_cache(CacheGeometry(l2_size,
                                           block_size=l1_geometry.block_size,
                                           ways=2),
                             "a2", write_policy=WritePolicy.WRITE_BACK_ALLOCATE)
            hierarchy = VirtualRealHierarchy(l1, l2,
                                             translate=page_table.translate,
                                             page_size=page_size)
            if engine == ENGINE_VECTORIZED:
                batch_vr = batch_virtual_real_like(hierarchy, page_table)
                batch_vr.run(materialise_batch(
                    build_trace(name, length=accesses, seed=seed)))
                hierarchy = batch_vr
            else:
                for access in build_trace(name, length=accesses, seed=seed):
                    hierarchy.access(access.address, is_write=access.is_write)
            per_program[name] = hierarchy.hole_rate_per_l2_miss
            total_holes += hierarchy.l2_misses_causing_holes
            total_l2_misses += hierarchy.l2.stats.misses

        result.per_program_hole_rate[l2_size] = per_program
        result.simulated_hole_rate[l2_size] = (
            total_holes / total_l2_misses if total_l2_misses else 0.0)
        result.l2_misses[l2_size] = total_l2_misses
    return result
