"""Replacement policies with externalized, array-friendly per-set state.

When a block must be brought into a full set (or, in a skewed cache, when all
candidate frames across the ways are occupied), the replacement policy picks
the victim.  The paper's experiments use LRU; FIFO, random and tree-PLRU are
provided for ablation studies because pseudo-random placement interacts with
replacement (a skewed cache cannot implement true per-set LRU cheaply in
hardware, which is why PLRU and random are interesting comparison points).

Policies own *all* of their decision state, held in flat per-``(way, set)``
tables — last-use timestamps for LRU, insertion counters for FIFO, per-set
PLRU bit-trees, a draw counter for the deterministic random policy — rather
than reading bookkeeping fields off :class:`~repro.cache.block.CacheBlock`
frames.  The tables are plain ``ways x num_sets`` structures, so the
vectorized engine (:mod:`repro.engine.replacement_vec`) can keep byte-for-byte
identical state in NumPy arrays and replay exactly the same decisions; the
shared primitive helpers in this module (:func:`splitmix64`,
:func:`plru_touch`, :func:`plru_victim`) are the single source of truth both
engines call into, which is what makes the cross-engine differential tests
bit-exact by construction.

A policy is *bound* to a cache geometry with :meth:`ReplacementPolicy.bind`
(the scalar caches do this at construction); the observation hooks
(:meth:`on_hit`, :meth:`on_fill`, :meth:`on_invalidate`) and
:meth:`choose_victim` then operate purely on ``(way, set_index)``
coordinates.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

__all__ = [
    "DEFAULT_RANDOM_SEED",
    "splitmix64",
    "plru_tree_size",
    "plru_touch",
    "plru_victim",
    "min_stamp_victim",
    "replacement_policy_name",
    "clone_replacement",
    "ReplacementPolicy",
    "LRUReplacement",
    "FIFOReplacement",
    "RandomReplacement",
    "TreePLRUReplacement",
    "REPLACEMENT_POLICIES",
    "make_replacement_policy",
    "resolve_replacement",
]

#: Seed shared by the scalar and vectorized random-replacement policies, so a
#: bare ``replacement="random"`` produces the same victim sequence on both
#: engines (and across runs).
DEFAULT_RANDOM_SEED = 0x9E3779B97F4A7C15

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 mix function: a stateless, counter-friendly 64-bit hash.

    Unlike a stateful generator (xorshift, ``random.Random``), the n-th draw
    is a pure function of ``seed + n`` — which is exactly what lets the
    vectorized engine reproduce the scalar policy's victim sequence without
    sharing mutable generator state.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


# --------------------------------------------------------------------- #
# tree-PLRU primitives (shared with repro.engine.replacement_vec)
# --------------------------------------------------------------------- #

def plru_tree_size(ways: int) -> int:
    """Number of direction bits in the PLRU tree over ``ways`` ways."""
    return max(ways - 1, 1)


def plru_touch(bits: List[bool], way: int, ways: int) -> None:
    """Flip the direction bits along ``way``'s path to point away from it.

    The midpoint-split tree over ``ways`` leaves has exactly ``ways - 1``
    internal nodes, stored pre-order: the node covering ``[low, high)`` sits
    at some offset, its left subtree (``mid - low - 1`` nodes) immediately
    after it, and its right subtree after that — so ragged (non-power-of-two)
    trees pack densely and every way remains reachable as a victim.
    ``bits[node] == True`` sends the victim walk right.
    """
    if ways < 2:
        return
    offset = 0
    low, high = 0, ways
    while high - low > 1:
        mid = (low + high) // 2
        go_right = way >= mid
        bits[offset] = not go_right  # point away from the touched half
        if go_right:
            offset += mid - low
            low = mid
        else:
            offset += 1
            high = mid


def plru_victim(bits: List[bool], ways: int) -> int:
    """Follow the direction bits down the tree to the pseudo-LRU way.

    Uses the same pre-order node layout as :func:`plru_touch`.
    """
    offset = 0
    low, high = 0, ways
    while high - low > 1:
        mid = (low + high) // 2
        if bits[offset]:
            offset += mid - low
            low = mid
        else:
            offset += 1
            high = mid
    return low


# --------------------------------------------------------------------- #
# policy interface
# --------------------------------------------------------------------- #

class ReplacementPolicy(abc.ABC):
    """Chooses a victim among candidate frames and observes accesses.

    State is externalized: the policy holds its own flat per-``(way, set)``
    tables, allocated when :meth:`bind` attaches it to a cache geometry.
    Hooks receive only coordinates and the access clock, never frames.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self._ways = 0
        self._num_sets = 0

    @property
    def ways(self) -> int:
        """Associativity of the bound cache (0 before :meth:`bind`)."""
        return self._ways

    @property
    def num_sets(self) -> int:
        """Sets per way of the bound cache (0 before :meth:`bind`)."""
        return self._num_sets

    def bind(self, ways: int, num_sets: int) -> None:
        """Attach the policy to a cache geometry, allocating state tables.

        A policy instance holds the state of exactly one cache; binding it a
        second time would let two caches clobber each other's tables, so it
        raises — pass a fresh instance (or just the policy name) per cache.
        """
        if ways < 1 or num_sets < 1:
            raise ValueError("ways and num_sets must be positive")
        if self._ways:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a cache; policy "
                "instances hold per-cache state and cannot be shared — pass "
                "a fresh instance or a policy name")
        self._ways = ways
        self._num_sets = num_sets
        self._allocate()

    def _require_bound(self) -> None:
        if not self._ways:
            raise RuntimeError(
                f"{type(self).__name__} must be bound to a cache geometry "
                "(call bind(ways, num_sets)) before use")

    def _allocate(self) -> None:
        """Allocate per-(way, set) state tables (default: none)."""

    @abc.abstractmethod
    def choose_victim(
        self, candidates: Sequence[Tuple[int, int]],
    ) -> Tuple[int, int]:
        """Pick the frame to evict.

        ``candidates`` is a sequence of ``(way, set_index)`` pairs — one per
        way for a skewed cache, or the frames of a single set for a
        conventional cache, always in way order.  Invalid frames are never
        passed here (the cache fills them first).
        """

    def on_hit(self, way: int, set_index: int, now: int) -> None:
        """Observe a hit (default: no state)."""

    def on_fill(self, way: int, set_index: int, now: int) -> None:
        """Observe a fill of a previously invalid or just-evicted frame."""

    def on_invalidate(self, way: int, set_index: int) -> None:
        """Observe an invalidation (default: no state)."""

    def reset(self) -> None:
        """Forget all decision state (called by ``Cache.flush``)."""
        if self._ways:
            self._allocate()


def min_stamp_victim(stamp: List[List[int]], candidates) -> Tuple[int, int]:
    """The candidate with the smallest timestamp, ties broken by way order.

    The one LRU/FIFO comparison rule of the whole subsystem — shared by the
    timestamp policies, the tree-PLRU skewed fallback and (via list views of
    the same layout) the vectorized state tables, so the engines cannot
    drift apart on tie-breaks.
    """
    best_way, best_set = candidates[0]
    best = stamp[best_way][best_set]
    for way, set_index in candidates[1:]:
        value = stamp[way][set_index]
        if value < best:
            best, best_way, best_set = value, way, set_index
    return best_way, best_set


class _TimestampPolicy(ReplacementPolicy):
    """Shared machinery for policies keyed on a per-frame timestamp table."""

    def _allocate(self) -> None:
        self._stamp: List[List[int]] = [
            [0] * self._num_sets for _ in range(self._ways)
        ]

    def choose_victim(self, candidates):
        self._require_bound()
        return min_stamp_victim(self._stamp, candidates)


class LRUReplacement(_TimestampPolicy):
    """Evict the least recently used candidate (the paper's default)."""

    name = "lru"

    def on_hit(self, way, set_index, now):
        self._stamp[way][set_index] = now

    def on_fill(self, way, set_index, now):
        self._stamp[way][set_index] = now


class FIFOReplacement(_TimestampPolicy):
    """Evict the candidate that was filled longest ago (hits don't refresh)."""

    name = "fifo"

    def on_fill(self, way, set_index, now):
        self._stamp[way][set_index] = now


class RandomReplacement(ReplacementPolicy):
    """Evict a deterministically pseudo-random candidate.

    The n-th victim choice is ``splitmix64(seed + n) % len(candidates)`` —
    a counter-based draw with no mutable generator state beyond the counter
    itself, reproducible run-to-run and engine-to-engine (the vectorized
    policy in :mod:`repro.engine.replacement_vec` consumes the identical
    sequence).
    """

    name = "random"

    def __init__(self, seed: int = DEFAULT_RANDOM_SEED) -> None:
        super().__init__()
        self._seed = int(seed) & _MASK64
        self._counter = 0

    @property
    def seed(self) -> int:
        """The draw-sequence seed."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of victim choices made so far."""
        return self._counter

    def choose_victim(self, candidates):
        self._require_bound()
        pick = splitmix64(self._seed + self._counter) % len(candidates)
        self._counter += 1
        return candidates[pick]

    def _allocate(self) -> None:
        self._counter = 0


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU over the ways of each set.

    Maintains a binary tree of direction bits per set; every hit or fill
    flips the bits along the path to the touched way so they point away from
    it, and the victim is found by following the bits.  Only meaningful when
    all candidates share one set index; for skewed candidates (differing set
    indices per way) it falls back to true LRU over its own timestamp table,
    since the per-set tree has no hardware analogue across banks.
    """

    name = "plru"

    def _allocate(self) -> None:
        tree = plru_tree_size(self._ways)
        self._bits: List[List[bool]] = [
            [False] * tree for _ in range(self._num_sets)
        ]
        self._stamp: List[List[int]] = [
            [0] * self._num_sets for _ in range(self._ways)
        ]

    def _touch(self, way: int, set_index: int, now: int) -> None:
        self._stamp[way][set_index] = now
        if self._ways >= 2:
            plru_touch(self._bits[set_index], way, self._ways)

    def on_hit(self, way, set_index, now):
        self._touch(way, set_index, now)

    def on_fill(self, way, set_index, now):
        self._touch(way, set_index, now)

    def choose_victim(self, candidates):
        self._require_bound()
        first_set = candidates[0][1]
        if any(set_index != first_set for _, set_index in candidates[1:]):
            # Skewed candidates: no shared tree; fall back to true LRU.
            return min_stamp_victim(self._stamp, candidates)
        ways = len(candidates)
        victim = plru_victim(self._bits[first_set], ways)
        return candidates[victim]


REPLACEMENT_POLICIES: Tuple[str, ...] = ("lru", "fifo", "random", "plru")

_POLICY_CLASSES = {
    "lru": LRUReplacement,
    "fifo": FIFOReplacement,
    "random": RandomReplacement,
    "plru": TreePLRUReplacement,
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Build an (unbound) policy from its short name (``lru``, ``fifo``, ``random``, ``plru``)."""
    try:
        return _POLICY_CLASSES[name.strip().lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(_POLICY_CLASSES)}"
        ) from None


def replacement_policy_name(replacement) -> str:
    """The validated short name of a ``replacement=`` argument
    (None -> ``lru``; accepts names and policy instances)."""
    if replacement is None:
        return "lru"
    if isinstance(replacement, ReplacementPolicy):
        name = replacement.name
    else:
        name = str(replacement).strip().lower()
    if name not in _POLICY_CLASSES:
        raise ValueError(
            f"unknown replacement policy {replacement!r}; expected one of "
            f"{sorted(_POLICY_CLASSES)}")
    return name


def clone_replacement(replacement) -> ReplacementPolicy:
    """A fresh, unbound policy with the same configuration.

    Used by composite caches (e.g. the victim cache) that need one policy
    instance per internal structure: the clone carries the configuration —
    including a :class:`RandomReplacement` seed — but none of the state.
    """
    if isinstance(replacement, RandomReplacement):
        return RandomReplacement(seed=replacement.seed)
    return make_replacement_policy(replacement_policy_name(replacement))


def resolve_replacement(replacement) -> ReplacementPolicy:
    """Normalise a ``replacement=`` argument: None -> LRU, str -> factory,
    policy instance -> itself."""
    if replacement is None:
        return LRUReplacement()
    if isinstance(replacement, str):
        return make_replacement_policy(replacement)
    if isinstance(replacement, ReplacementPolicy):
        return replacement
    raise TypeError(
        "replacement must be a policy name, a ReplacementPolicy instance or "
        f"None, got {type(replacement).__name__}")
