"""Replaying on-disk traces through experiment cache grids.

The studies in this package default to the synthetic workload suite, but
each of them also accepts ``trace=PATH`` (CLI: ``--trace FILE``): a recorded
address trace in any format :mod:`repro.trace.stream` understands — packed
v2 (optionally gzip/bz2/xz/zstd-compressed), the v1 binary and text formats,
or a Dinero ``.din`` file.  This module holds the two replay shapes those
modes share:

* the **vectorized** engine makes one pass over
  :func:`~repro.trace.stream.iter_trace_chunks`, feeding every cache of the
  grid each chunk before reading the next — memory stays bounded by the
  chunk size no matter how large the trace, and because every batch kernel
  carries its state across ``run`` calls the counters are bit-identical to
  a single whole-trace ``run`` (asserted in ``tests/test_trace_stream.py``);
* the **reference** engine replays the record stream access-at-a-time
  through each scalar model (one pass per cache — scalar models have no
  shared-chunk advantage, and the record reader is itself streaming).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Hashable, Mapping, Union

__all__ = [
    "trace_label",
    "stream_trace",
    "stream_trace_vectorized",
    "stream_trace_reference",
    "load_miss_ratios_percent",
]


def trace_label(trace: Union[str, Path]) -> str:
    """Row label a study uses for an on-disk trace (its file name)."""
    return Path(trace).name


def _feed(cache, batch) -> None:
    """Drive one cache with one chunk: native ``run`` or scalar replay."""
    if hasattr(cache, "run"):
        cache.run(batch)
        return
    access = cache.access
    for address, is_write in zip(batch.addresses.tolist(),
                                 batch.is_write.tolist()):
        access(address, is_write=is_write)


def stream_trace_vectorized(caches: Mapping[Hashable, object],
                            trace: Union[str, Path],
                            chunk_size: int) -> int:
    """One chunked pass over ``trace`` feeding every cache; returns accesses.

    Each chunk is materialised once (as an
    :class:`~repro.engine.batch.AddressBatch`) and run through all caches
    before the next chunk is read, so peak memory is one chunk regardless
    of trace length.
    """
    from ..trace.stream import iter_trace_chunks

    total = 0
    for batch in iter_trace_chunks(trace, chunk_size=chunk_size):
        for cache in caches.values():
            _feed(cache, batch)
        total += len(batch)
    return total


def stream_trace_reference(caches: Mapping[Hashable, object],
                           trace: Union[str, Path]) -> int:
    """Replay ``trace`` access-at-a-time through each cache; returns accesses."""
    from ..trace.stream import read_trace_records

    total = 0
    for cache in caches.values():
        count = 0
        access = cache.access
        for record in read_trace_records(trace):
            access(record.address, is_write=record.is_write)
            count += 1
        total = count
    return total


def stream_trace(caches: Mapping[Hashable, object], trace: Union[str, Path],
                 engine: str, chunk_size: int) -> int:
    """Dispatch to the engine-appropriate replay; returns accesses replayed."""
    from ..engine import ENGINE_VECTORIZED

    if engine == ENGINE_VECTORIZED:
        return stream_trace_vectorized(caches, trace, chunk_size)
    return stream_trace_reference(caches, trace)


def load_miss_ratios_percent(caches: Mapping[Hashable, object],
                             ) -> Dict[Hashable, float]:
    """Per-cache load miss ratio (percent), keyed like ``caches``."""
    return {key: 100.0 * cache.stats.load_miss_ratio
            for key, cache in caches.items()}
