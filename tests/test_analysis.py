"""Tests for metrics, histograms and report formatting."""

import math

import pytest

from repro.analysis.histograms import MissRatioHistogram, compare_histograms
from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    percent_change,
    speedup,
    std_deviation,
    summarise_ipc,
    summarise_miss_ratios,
)
from repro.analysis.reporting import TableBuilder, format_csv, format_table


class TestMetrics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_below_arithmetic(self):
        values = [0.8, 1.3, 2.1, 1.0]
        assert geometric_mean(values) <= arithmetic_mean(values)

    def test_std_deviation(self):
        assert std_deviation([2, 2, 2]) == 0.0
        assert std_deviation([1, 3]) == pytest.approx(1.0)

    def test_empty_sequences_rejected(self):
        for fn in (arithmetic_mean, geometric_mean, std_deviation):
            with pytest.raises(ValueError):
                fn([])

    def test_percent_change_and_speedup(self):
        assert percent_change(1.0, 1.33) == pytest.approx(33.0)
        assert percent_change(2.0, 1.0) == pytest.approx(-50.0)
        assert speedup(1.0, 1.5) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)

    def test_group_summaries(self):
        miss = {"a": 10.0, "b": 20.0, "c": 60.0}
        ipc = {"a": 1.0, "b": 2.0, "c": 4.0}
        groups = {"ab": ["a", "b"], "all": ["a", "b", "c"]}
        assert summarise_miss_ratios(miss, groups)["ab"] == 15.0
        assert summarise_ipc(ipc, groups)["all"] == pytest.approx(2.0)

    def test_group_summary_unknown_program(self):
        with pytest.raises(KeyError):
            summarise_miss_ratios({"a": 1.0}, {"g": ["a", "zzz"]})


class TestHistogram:
    def test_bucketing_matches_figure1_edges(self):
        histogram = MissRatioHistogram()
        assert histogram.bucket_of(0.0) == 0
        assert histogram.bucket_of(0.05) == 0
        assert histogram.bucket_of(0.1) == 0
        assert histogram.bucket_of(0.11) == 1
        assert histogram.bucket_of(1.0) == 9

    def test_add_and_totals(self):
        histogram = MissRatioHistogram(label="a2")
        histogram.add_all([0.05, 0.2, 0.95, 1.0])
        assert histogram.total == 4
        assert sum(histogram.counts) == 4
        assert histogram.counts[9] == 2

    def test_fraction_above_half(self):
        histogram = MissRatioHistogram()
        histogram.add_all([0.1] * 90 + [0.9] * 10)
        assert histogram.fraction_above(0.5) == pytest.approx(0.1)

    def test_fraction_above_empty(self):
        assert MissRatioHistogram().fraction_above(0.5) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MissRatioHistogram().add(1.2)

    def test_render_contains_all_edges(self):
        histogram = MissRatioHistogram(label="test")
        histogram.add_all([0.3, 0.6])
        text = histogram.render()
        assert "0.1" in text and "1.0" in text and "test" in text

    def test_compare(self):
        a = MissRatioHistogram(label="a")
        b = MissRatioHistogram(label="b")
        a.add_all([0.9, 0.9, 0.1, 0.1])
        b.add_all([0.1, 0.1, 0.1, 0.1])
        summary = compare_histograms([a, b])
        assert summary["a"] == 0.5
        assert summary["b"] == 0.0

    def test_as_dict(self):
        histogram = MissRatioHistogram()
        histogram.add(0.25)
        assert histogram.as_dict()[0.3] == 1


class TestReporting:
    def test_format_table_alignment_and_values(self):
        text = format_table(["name", "ipc"], [["swim", 1.53], ["gcc", 1.03]])
        assert "swim" in text and "1.53" in text
        lines = text.splitlines()
        assert len(lines) == 4          # header, rule, two rows

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_csv(self):
        csv_text = format_csv(["x", "y"], [[1, 2.5], ["z", None]])
        assert csv_text.splitlines()[0] == "x,y"
        assert "2.5000" in csv_text

    def test_table_builder_round_trip(self):
        table = TableBuilder(["ipc", "miss"], row_label="program")
        table.add_row("swim", {"ipc": 1.5, "miss": 8.85})
        table.set("swim", "miss", 9.0)
        assert table.get("swim", "miss") == 9.0
        assert table.row_names == ["swim"]
        assert "swim" in table.render()
        assert "program" in table.render_csv()

    def test_table_builder_column_values(self):
        table = TableBuilder(["ipc"])
        table.add_row("a", {"ipc": 1.0})
        table.add_row("b", {"ipc": 2.0})
        table.add_row("c", {})                  # unset cell skipped
        assert table.column_values("ipc") == [1.0, 2.0]
        assert table.column_values("ipc", rows=["b"]) == [2.0]

    def test_table_builder_unknown_column(self):
        table = TableBuilder(["ipc"])
        with pytest.raises(KeyError):
            table.add_row("a", {"bogus": 1})
        with pytest.raises(KeyError):
            table.set("a", "bogus", 1)

    def test_table_builder_requires_columns(self):
        with pytest.raises(ValueError):
            TableBuilder([])
