"""Structural-resource bookkeeping for the out-of-order core.

The processor model computes, for each dynamic instruction in program order,
the cycles at which it is fetched, dispatched, issued, completed and
committed.  Structural limits (reorder-buffer entries, physical registers,
cache ports) all share the same shape: *the Nth most recent holder must have
released the resource before a new one can be acquired*.  These helper
classes express that shape directly so the pipeline code stays readable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

__all__ = ["WindowResource", "ThroughputLimiter"]


class WindowResource:
    """A pool of ``capacity`` slots acquired in order and released at known cycles.

    Used for the reorder buffer (an instruction needs a free ROB entry to
    dispatch; the entry frees when the instruction 32 places earlier commits)
    and for the physical register files (64 integer + 64 floating-point
    registers, allocated at dispatch and freed at commit).
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._release_cycles: Deque[int] = deque()
        self.name = name or "window"
        self.stall_events = 0

    @property
    def capacity(self) -> int:
        """Number of slots."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Slots currently recorded as held (not yet expired by ``acquire``)."""
        return len(self._release_cycles)

    def earliest_acquire(self, requested_cycle: int) -> int:
        """Earliest cycle at or after ``requested_cycle`` when a slot is free."""
        if len(self._release_cycles) < self._capacity:
            return requested_cycle
        # The oldest outstanding holder frees its slot at its release cycle.
        return max(requested_cycle, self._release_cycles[0])

    def acquire(self, requested_cycle: int, release_cycle: int) -> int:
        """Acquire a slot no earlier than ``requested_cycle``.

        ``release_cycle`` is when this holder will free the slot (its commit
        cycle).  Returns the actual acquisition cycle, which may be later
        than requested if the pool was full.
        """
        actual = self.earliest_acquire(requested_cycle)
        if actual > requested_cycle:
            self.stall_events += 1
        if len(self._release_cycles) >= self._capacity:
            self._release_cycles.popleft()
        if release_cycle < actual:
            raise ValueError("release_cycle must not precede the acquisition cycle")
        self._release_cycles.append(release_cycle)
        return actual

    def reset(self) -> None:
        """Forget all holders."""
        self._release_cycles.clear()
        self.stall_events = 0


class ThroughputLimiter:
    """Enforces an 'at most N events per cycle' constraint (fetch, issue, commit widths).

    The limiter remembers the cycles of the last ``width`` events; a new event
    requested at cycle ``c`` must not share a cycle with ``width`` earlier
    events, so its actual cycle is ``max(c, cycle_of_event[n - width] + 1)``
    — conveniently the same sliding-window shape as :class:`WindowResource`
    with a +1.
    """

    def __init__(self, width: int, name: str = "") -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self._width = width
        self._recent: Deque[int] = deque()
        self.name = name or "limiter"

    @property
    def width(self) -> int:
        """Maximum events per cycle."""
        return self._width

    def next_slot(self, requested_cycle: int) -> int:
        """Earliest cycle at or after ``requested_cycle`` with bandwidth available."""
        if len(self._recent) < self._width:
            return requested_cycle
        return max(requested_cycle, self._recent[0] + 1)

    def record(self, requested_cycle: int) -> int:
        """Claim a slot; returns the cycle actually granted."""
        actual = self.next_slot(requested_cycle)
        if len(self._recent) >= self._width:
            self._recent.popleft()
        self._recent.append(actual)
        return actual

    def reset(self) -> None:
        """Forget the recent events."""
        self._recent.clear()
