"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
numbers).  The benchmarks use pytest-benchmark so the cost of regenerating
each artefact is tracked, and every benchmark *also* asserts the qualitative
claims of the corresponding experiment, so ``pytest benchmarks/
--benchmark-only`` doubles as an end-to-end validation run.

Scale knobs: the environment variables ``REPRO_BENCH_INSTRUCTIONS`` and
``REPRO_BENCH_ACCESSES`` override the per-program instruction / access counts
(defaults keep the full suite under a few minutes in pure Python).
"""

import os

import pytest


def _env_int(name, default):
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


#: Committed instructions per program for the processor-level benchmarks.
BENCH_INSTRUCTIONS = _env_int("REPRO_BENCH_INSTRUCTIONS", 12_000)

#: Trace accesses per program for the cache-level benchmarks.
BENCH_ACCESSES = _env_int("REPRO_BENCH_ACCESSES", 40_000)


@pytest.fixture(scope="session")
def bench_instructions():
    """Per-program instruction budget for processor benchmarks."""
    return BENCH_INSTRUCTIONS


@pytest.fixture(scope="session")
def bench_accesses():
    """Per-program access budget for trace benchmarks."""
    return BENCH_ACCESSES
