"""Experiment E-CA: column-associative cache with a polynomial rehash.

Section 3.1 (option 4) describes a direct-mapped, physically-tagged cache
that probes a conventional index first and an I-Poly index second, swapping
lines so that hot blocks migrate to their first-probe location.  The paper
reports "a typical probability of around 90% that a hit is detected at the
first probe", and notes that the organisation is only attractive when miss
penalties are large because the occasional second probe lengthens the average
hit time.

This driver measures, per workload: the overall miss ratio, the first-probe
hit probability, the average number of probes per access, and the average hit
time for a configurable second-probe penalty — everything needed to check the
90% claim and the hit-time trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import arithmetic_mean
from ..analysis.reporting import TableBuilder
from ..cache.column_assoc import ColumnAssociativeCache
from ..trace.workloads import build_trace, workload_names
from .config import PAPER_HASH_BITS, PAPER_L1_8KB, CacheGeometry

__all__ = ["ColumnAssocStudyResult", "run_column_assoc_study"]


@dataclass
class ColumnAssocStudyResult:
    """Per-program column-associative statistics."""

    geometry: CacheGeometry
    accesses_per_program: int
    miss_ratio_percent: Dict[str, float] = field(default_factory=dict)
    first_probe_hit_ratio: Dict[str, float] = field(default_factory=dict)
    average_probes: Dict[str, float] = field(default_factory=dict)
    average_hit_time: Dict[str, float] = field(default_factory=dict)

    @property
    def programs(self) -> List[str]:
        """Programs replayed."""
        return list(self.miss_ratio_percent)

    def mean_first_probe_hit_ratio(self) -> float:
        """Suite-average probability that a hit is found on the first probe."""
        return arithmetic_mean(list(self.first_probe_hit_ratio.values()))

    def table(self) -> TableBuilder:
        """Per-program table with an average row."""
        columns = ["miss %", "first-probe hits", "avg probes", "avg hit time"]
        table = TableBuilder(columns, row_label="program")
        for program in self.programs:
            table.add_row(program, {
                "miss %": self.miss_ratio_percent[program],
                "first-probe hits": self.first_probe_hit_ratio[program],
                "avg probes": self.average_probes[program],
                "avg hit time": self.average_hit_time[program],
            })
        table.add_row("Average", {
            "miss %": arithmetic_mean(list(self.miss_ratio_percent.values())),
            "first-probe hits": self.mean_first_probe_hit_ratio(),
            "avg probes": arithmetic_mean(list(self.average_probes.values())),
            "avg hit time": arithmetic_mean(list(self.average_hit_time.values())),
        })
        return table

    def render(self) -> str:
        """Render as text."""
        return self.table().render(precision=3,
                                   title="Column-associative cache with I-Poly rehash")


def run_column_assoc_study(programs: Optional[Sequence[str]] = None,
                           accesses: int = 40_000,
                           geometry: CacheGeometry = PAPER_L1_8KB,
                           second_probe_penalty: float = 1.0,
                           seed: int = 12345) -> ColumnAssocStudyResult:
    """Replay the workload suite through the column-associative organisation."""
    program_list = list(programs) if programs is not None else workload_names()
    result = ColumnAssocStudyResult(geometry=geometry,
                                    accesses_per_program=accesses)
    for name in program_list:
        cache = ColumnAssociativeCache(geometry.size_bytes, geometry.block_size,
                                       address_bits=PAPER_HASH_BITS)
        for access in build_trace(name, length=accesses, seed=seed):
            cache.access(access.address, is_write=access.is_write)
        result.miss_ratio_percent[name] = 100.0 * cache.stats.load_miss_ratio
        result.first_probe_hit_ratio[name] = cache.first_probe_hit_ratio
        result.average_probes[name] = cache.average_probes
        result.average_hit_time[name] = cache.average_hit_time(
            second_probe_penalty=second_probe_penalty)
    return result
