"""Tests for the analytical models (holes and CLA timing)."""

import pytest

from repro.models.cla_timing import ClaTimingModel, paper_example
from repro.models.holes import (
    HoleModel,
    displacement_probability,
    expected_l1_missratio_increase,
    hole_probability,
    index_bits_for,
    resident_probability,
)


class TestHoleModel:
    def test_index_bits(self):
        assert index_bits_for(8 * 1024, 32) == 8
        assert index_bits_for(256 * 1024, 32) == 13
        assert index_bits_for(8 * 1024, 32, ways=2) == 7

    def test_index_bits_validation(self):
        with pytest.raises(ValueError):
            index_bits_for(1000, 32)
        with pytest.raises(ValueError):
            index_bits_for(0, 32)

    def test_equation_vii(self):
        assert resident_probability(8, 13) == pytest.approx(2 ** -5)

    def test_equation_viii(self):
        assert displacement_probability(8) == pytest.approx(255 / 256)

    def test_equation_ix_is_product(self):
        m1, m2 = 8, 13
        assert hole_probability(m1, m2) == pytest.approx(
            resident_probability(m1, m2) * displacement_probability(m1))

    def test_paper_example_8k_256k(self):
        """The paper: P_H = 0.031 for an 8 KB L1 and 256 KB L2, 32 B lines."""
        model = HoleModel(l1_bytes=8 * 1024, l2_bytes=256 * 1024, block_size=32)
        assert model.hole_probability == pytest.approx(0.031, abs=0.001)

    def test_larger_l2_gives_smaller_hole_probability(self):
        small = HoleModel(8 * 1024, 256 * 1024).hole_probability
        large = HoleModel(8 * 1024, 1024 * 1024).hole_probability
        assert large < small
        assert large == pytest.approx(small / 4, rel=0.01)

    def test_missratio_increase(self):
        model = HoleModel(8 * 1024, 1024 * 1024)
        assert model.missratio_increase(0.05) == pytest.approx(
            model.hole_probability * 0.05)
        assert expected_l1_missratio_increase(8, 15, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hole_probability(10, 5)          # L1 larger than L2
        with pytest.raises(ValueError):
            expected_l1_missratio_increase(8, 13, 1.5)


class TestClaTiming:
    def test_paper_example_numbers(self):
        """Section 3.4: 19 low bits after ~9 block delays, 64 bits after ~11."""
        numbers = paper_example()
        assert numbers["hash_bits_delay_blocks"] == 9
        assert numbers["full_add_delay_blocks"] == 11
        assert numbers["slack_blocks"] == 2
        assert numbers["xor_hidden"] is True

    def test_monotonic_in_bits(self):
        model = ClaTimingModel(address_bits=64, block_bits=2)
        delays = [model.delay_for_bits(b) for b in (2, 4, 8, 16, 32, 64)]
        assert delays == sorted(delays)
        assert delays == [1, 3, 5, 7, 9, 11]

    def test_slack_never_negative(self):
        model = ClaTimingModel(address_bits=64, block_bits=2)
        assert all(model.slack_for_bits(b) >= 0 for b in range(1, 65))

    def test_wider_radix_is_faster(self):
        binary = ClaTimingModel(address_bits=64, block_bits=2)
        radix4 = ClaTimingModel(address_bits=64, block_bits=4)
        assert radix4.full_add_delay < binary.full_add_delay

    def test_xor_fits_in_slack(self):
        model = ClaTimingModel(address_bits=64, block_bits=2)
        assert model.xor_fits_in_slack(19, xor_delay_blocks=1)
        assert not model.xor_fits_in_slack(64, xor_delay_blocks=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClaTimingModel(address_bits=0)
        with pytest.raises(ValueError):
            ClaTimingModel(block_bits=1)
        with pytest.raises(ValueError):
            ClaTimingModel().delay_for_bits(0)
