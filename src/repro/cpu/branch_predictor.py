"""Branch prediction: a bimodal table of 2-bit saturating counters.

The paper's processor uses "a branch history table with 2K entries and 2-bit
saturating counters".  That is a classic bimodal predictor: the branch PC
selects a counter, the counter's most-significant bit gives the prediction,
and the counter moves towards the observed outcome by one step per branch.
"""

from __future__ import annotations

from typing import List

__all__ = ["BimodalBranchPredictor"]


class BimodalBranchPredictor:
    """2-bit saturating-counter branch history table."""

    def __init__(self, entries: int = 2048, initial_counter: int = 1) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= initial_counter <= 3:
            raise ValueError("initial_counter must be a 2-bit value")
        self._entries = entries
        self._mask = entries - 1
        self._counters: List[int] = [initial_counter] * entries
        self.predictions = 0
        self.mispredictions = 0

    @property
    def entries(self) -> int:
        """Number of counters in the table."""
        return self._entries

    def _index(self, pc: int) -> int:
        # Instructions are word-aligned; drop the low two bits before hashing.
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict the outcome of the branch at ``pc`` (True = taken)."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the real outcome; returns True when the prediction was correct."""
        index = self._index(pc)
        predicted_taken = self._counters[index] >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        return correct

    @property
    def misprediction_ratio(self) -> float:
        """Fraction of branches mispredicted so far."""
        return self.mispredictions / self.predictions if self.predictions else 0.0

    def reset(self) -> None:
        """Return every counter to weakly not-taken and clear statistics."""
        self._counters = [1] * self._entries
        self.predictions = 0
        self.mispredictions = 0
