"""repro — reproduction of "The Design and Performance of a Conflict-Avoiding Cache".

Topham, Gonzalez & Gonzalez, MICRO-30 (1997).

The package is organised bottom-up:

* :mod:`repro.core` — the I-Poly placement function and the baselines it is
  compared against (conventional bit selection, skewed XOR, prime modulus),
  plus the GF(2) machinery and the XOR-tree hardware cost model.
* :mod:`repro.cache` — single-level cache organisations (set-associative,
  fully-associative, skewed, victim, column-associative) and two-level
  hierarchies with Inclusion, including the virtual-real organisation the
  paper recommends.
* :mod:`repro.memory` — paging, TLB, address translation and the main-memory
  / bus timing model.
* :mod:`repro.trace` — synthetic address-trace generators and the Spec95-like
  workload models used in place of the original benchmark traces.
* :mod:`repro.cpu` — the out-of-order superscalar processor model used for
  the IPC experiments (Tables 2 and 3), including the stride-based memory
  address predictor.
* :mod:`repro.models` — analytical models (Inclusion holes, CLA timing).
* :mod:`repro.analysis` — metric aggregation, Figure-1 histograms and table
  formatting.
* :mod:`repro.experiments` — one driver per table/figure of the paper.
"""

from . import analysis, cache, core, cpu, experiments, memory, models, trace

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "cpu",
    "experiments",
    "cache",
    "core",
    "memory",
    "models",
    "trace",
    "__version__",
]
