"""Carry-lookahead adder timing model (Section 3.4).

The worry about I-Poly indexing is that its XOR stage sits after the
effective-address add and might lengthen the load critical path.  The paper's
counter-argument is that address bits arrive from least- to most-significant:
in a hierarchical carry-lookahead adder (CLA) with lookahead blocks of ``b``
bits, the ``b**i`` least-significant bits of the sum are available after
approximately ``2*i - 1`` block delays.  The low bits therefore arrive
logarithmically earlier than the full sum, leaving slack in which the XOR
tree can operate without extending the critical path.

For the paper's example — 64-bit addresses, a *binary* CLA (``b = 2``) and
the 19 low bits the I-Poly functions consume — the hash inputs are ready
after about 9 block delays while the full addition needs about 11, which is
exactly what :func:`paper_example` reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ClaTimingModel", "paper_example"]


@dataclass(frozen=True)
class ClaTimingModel:
    """Timing of a hierarchical carry-lookahead adder.

    Parameters
    ----------
    address_bits:
        Width of the addition (the paper uses 64-bit addresses).
    block_bits:
        Lookahead radix ``b``; the paper's example uses a binary CLA
        (``b = 2``).
    """

    address_bits: int = 64
    block_bits: int = 2

    def __post_init__(self) -> None:
        if self.address_bits < 1:
            raise ValueError("address_bits must be positive")
        if self.block_bits < 2:
            raise ValueError("block_bits (the lookahead radix) must be at least 2")

    def levels_for_bits(self, bits: int) -> int:
        """Number of lookahead levels needed before the low ``bits`` are valid.

        This is the smallest ``i`` with ``block_bits**i >= bits``.
        """
        if bits < 1 or bits > self.address_bits:
            raise ValueError(f"bits must be in 1..{self.address_bits}")
        return max(1, math.ceil(math.log(bits, self.block_bits)))

    def delay_for_bits(self, bits: int) -> int:
        """Block delays until the low ``bits`` bits of the sum are valid.

        Following the paper: the ``b**i`` least-significant bits have a delay
        of approximately ``2*i - 1`` block delays.
        """
        return 2 * self.levels_for_bits(bits) - 1

    @property
    def full_add_delay(self) -> int:
        """Block delays for the complete addition."""
        return self.delay_for_bits(self.address_bits)

    def slack_for_bits(self, bits: int) -> int:
        """Block delays between the low ``bits`` being ready and the add completing."""
        return self.full_add_delay - self.delay_for_bits(bits)

    def xor_fits_in_slack(self, bits: int, xor_delay_blocks: float = 1.0) -> bool:
        """Whether an XOR stage of the given delay hides inside the slack."""
        if xor_delay_blocks < 0:
            raise ValueError("xor_delay_blocks must be non-negative")
        return xor_delay_blocks <= self.slack_for_bits(bits)


def paper_example() -> dict:
    """Reproduce the Section 3.4 numbers for 64-bit addresses and 19 hash bits.

    Returns a dict with the delay of the 19 low bits, the delay of the full
    addition, and the slack available to the XOR tree.  The paper quotes
    "about 9 blocks" and "11 block-delays" respectively.
    """
    model = ClaTimingModel(address_bits=64, block_bits=2)
    bits = 19
    return {
        "hash_bits": bits,
        "hash_bits_delay_blocks": model.delay_for_bits(bits),
        "full_add_delay_blocks": model.full_add_delay,
        "slack_blocks": model.slack_for_bits(bits),
        "xor_hidden": model.xor_fits_in_slack(bits),
    }
