"""E-F1: regenerate Figure 1 — the stride miss-ratio frequency distribution.

Paper claim: the conventional scheme is pathological (miss ratio > 50%) on
more than 6% of strides in 1..4096, while the skewed I-Poly scheme has no
pathological strides at all; the skewed-XOR scheme sits in between (the
paper's exact XOR functions show more pathological strides than the
full-window fold implemented here — see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.figure1 import run_figure1

# The full sweep covers strides 1..4095; the benchmark subsamples every other
# stride to stay inside a few minutes of pure-Python simulation while still
# covering the whole range (set the step to 1 for the complete figure).
STRIDE_STEP = 2
MAX_STRIDE = 4096


def _run():
    return run_figure1(max_stride=MAX_STRIDE, sweeps=8, stride_step=STRIDE_STEP)


@pytest.mark.benchmark(group="figure1")
def test_figure1_distribution(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    summary = result.summary()

    print()
    print(result.render())

    # Conventional indexing has a solid tail of pathological strides ...
    assert summary["a2"] > 0.03
    # ... skewed I-Poly has none ...
    assert summary["a2-Hp-Sk"] == 0.0
    # ... non-skewed I-Poly has at most a handful ...
    assert summary["a2-Hp"] < summary["a2"]
    # ... and every scheme keeps the majority of strides in the low-miss
    # region (the compulsory-miss floor of the 8-sweep workload is 12.5%, so
    # "low" means the first two deciles).
    for scheme, histogram in result.histograms.items():
        low = histogram.counts[0] + histogram.counts[1]
        assert low > histogram.total * 0.5, scheme
