"""Batch multi-level engine: two-level and virtual-real hierarchies.

The scalar multi-level models (:class:`~repro.cache.hierarchy.TwoLevelHierarchy`
and :class:`~repro.cache.virtual_real.VirtualRealHierarchy`) interleave the two
cache levels access by access, which makes them the slowest path in the repo:
none of the single-level batch kernels can serve them directly because L2
evictions feed *back* into L1 as back-invalidations (the "holes" of Sections
3.2/3.3 of the paper).

This module composes per-level batch caches by exchanging **miss streams**:

1. an optimistic L1 pass over an *epoch* of the trace runs a single-level
   collect kernel and emits the L2-bound stream — every L1 miss (including
   write-through/no-allocate store misses) plus every L1 store hit
   (write-through propagation), each tagged with its trace position and the
   dirty write-back victim it displaced;
2. the L2 consume kernel replays that stream in trace order.  Whenever an L2
   miss evicts a line, a residency oracle (per-epoch fill/evict event lists
   plus the epoch-start snapshot) answers "did L1 hold a copy of that line at
   this trace position?" — exactly the question the scalar model answers with
   ``l1.invalidate_block``;
3. if the answer is ever *yes*, the optimistic L1 pass is invalid beyond that
   position: the epoch **stops**, L1 is rewound to its epoch-start snapshot,
   the committed prefix is replayed scalar-exactly, the back-invalidation is
   applied with the scalar model's own hole accounting, and simulation resumes
   just after the stop with a smaller epoch (sizes adapt between
   ``_EPOCH_MIN`` and ``_EPOCH_MAX``).

Because back-invalidations are rare by construction (the paper measures well
under 1% of L2 misses creating holes), almost every epoch commits cleanly and
the engine runs at single-level kernel speed; the stop/rewind path is the
scalar semantics itself, so the composition is bit-exact — per-level
:class:`~repro.cache.stats.CacheStats`, hole counters, resident blocks and
per-access hit/miss outcomes all match the scalar models (asserted by the
differential suite in ``tests/test_hierarchy_vec.py``).

The virtual-real twin adds the translation front-end of
:mod:`repro.engine.translate_vec` (batch page-table walks in first-touch fault
order, TLB run collapsing) and dispatches on the page mapping: with an
injective virtual->physical frame mapping the scalar alias-invalidation path
is provably dead and the virtual/physical line correspondence is a bijection,
so the same epoch/miss-stream machinery applies with the inverse frame map as
the back-invalidation oracle; a hand-doctored aliasing mapping (or a
sequential allocator that could collide with pre-seeded frames) falls back to
a fused per-access transliteration of the scalar protocol.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..cache.set_assoc import WritePolicy
from ..memory.paging import TLB, PageTable
from .batch import AddressBatch
from .batch_cache import BatchSetAssociativeCache
from .memo import cached_block_numbers, cached_set_index_lists
from .translate_vec import batch_page_frames, run_tlb_kernel

__all__ = [
    "MissStream",
    "HierarchyBatchResult",
    "BatchTwoLevelHierarchy",
    "BatchVirtualRealHierarchy",
    "batch_hierarchy_like",
    "batch_virtual_real_like",
]

# Epoch sizing: start mid-range, halve on every stop (cross-level feedback
# detected), double on every clean commit.  Stops are rare in realistic
# configurations, so epochs quickly grow to _EPOCH_MAX and the engine spends
# its time in the single-level kernels.
_EPOCH_START = 1024
_EPOCH_MIN = 64
_EPOCH_MAX = 32768


@dataclass
class MissStream:
    """The L2-bound access stream one L1 collect pass emits for an epoch.

    One ``(position, l2_block, is_write, is_l1_miss, victim_block,
    victim_dirty)`` tuple per entry, in trace order.  A single tuple append
    per entry is what keeps high-miss-ratio traces fast — the collect loop
    emits an entry for ~90% of accesses on a conflict-heavy trace, so entry
    construction is part of the hot path, not bookkeeping.

    ``is_l1_miss`` distinguishes genuine L1 misses from write-through
    store-hit propagation (whose L2 evictions the scalar models ignore);
    ``victim_block``/``victim_dirty`` record the L1 line each miss displaced
    (``-1``/False when the fill used an invalid frame or the miss did not
    allocate) — the scalar hierarchy absorbs L1 write-backs without an L2
    access, so these fields are observability plus the residency oracle's
    raw material, not extra L2 traffic.
    """

    entries: List[Tuple[int, int, bool, bool, int, bool]]

    def __len__(self) -> int:
        return len(self.entries)

    # Column views (for tests and introspection; the kernels iterate the
    # tuples directly).
    @property
    def positions(self) -> List[int]:
        return [e[0] for e in self.entries]

    @property
    def l2_blocks(self) -> List[int]:
        return [e[1] for e in self.entries]

    @property
    def is_write(self) -> List[bool]:
        return [e[2] for e in self.entries]

    @property
    def is_l1_miss(self) -> List[bool]:
        return [e[3] for e in self.entries]

    @property
    def victim_blocks(self) -> List[int]:
        return [e[4] for e in self.entries]

    @property
    def victim_dirty(self) -> List[bool]:
        return [e[5] for e in self.entries]


@dataclass
class HierarchyBatchResult:
    """Per-access outcome arrays of one batch through a two-level engine.

    ``l2_hits`` follows the scalar access results: it is True wherever L1 hit
    (the request never probed L2, or only as write-through propagation) and
    carries the real L2 outcome on L1 misses.
    """

    l1_hits: np.ndarray
    l2_hits: np.ndarray

    def __len__(self) -> int:
        return len(self.l1_hits)

    @property
    def memory_accesses(self) -> int:
        """Number of accesses that missed both levels."""
        return int(np.count_nonzero(~self.l1_hits & ~self.l2_hits))


# --------------------------------------------------------------------------- #
# scalar-exact single access on batch-cache state (all three layouts)
# --------------------------------------------------------------------------- #


class _policy_checkout:
    """Context manager holding a cache's replacement-policy kernel checkout."""

    def __init__(self, cache: BatchSetAssociativeCache) -> None:
        self._policy = cache._vec_policy

    def __enter__(self) -> "_policy_checkout":
        if self._policy is not None:
            self._policy.kernel_begin()
        return self

    def __exit__(self, *exc) -> None:
        if self._policy is not None:
            self._policy.kernel_end()


def _cache_access_one(cache: BatchSetAssociativeCache, block: int,
                      is_write: bool) -> Tuple[bool, bool, Optional[int], bool]:
    """One scalar-exact access against batch-cache state.

    Returns ``(hit, allocated, evicted_block, evicted_dirty)`` — the fields
    of the scalar :class:`~repro.cache.set_assoc.AccessResult` the multi-level
    protocols consume.  Statistics and the access clock update exactly like
    :meth:`SetAssociativeCache.access_block`.  For policy-backed caches the
    caller must hold the kernel checkout (see :class:`_policy_checkout`).
    """
    cache._clock += 1
    clock = cache._clock
    stats = cache.stats
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE

    if not cache._use_flat:
        d = cache._sets[cache._index_fn.index(block, 0)]
        if block in d:
            dirty = d.pop(block)
            d[block] = dirty or (is_write and write_back)
            stats.record_access(is_write, True)
            return True, False, None, False
        stats.record_access(is_write, False)
        if is_write and not write_back:
            return False, False, None, False
        evicted: Optional[int] = None
        evicted_dirty = False
        if len(d) >= cache._ways:
            evicted = next(iter(d))
            evicted_dirty = d.pop(evicted)
            if evicted_dirty:
                stats.writebacks += 1
            stats.evictions += 1
        d[block] = is_write and write_back
        return False, True, evicted, evicted_dirty

    tags = cache._way_tags
    used = cache._way_used
    dirty = cache._way_dirty
    policy = cache._vec_policy
    cand = cache._candidate_sets(block)
    for wy, s in enumerate(cand):
        if tags[wy][s] == block:
            if policy is None:
                used[wy][s] = clock
            else:
                policy.on_hit(wy, s, clock)
            if is_write and write_back:
                dirty[wy][s] = True
            stats.record_access(is_write, True)
            return True, False, None, False
    stats.record_access(is_write, False)
    if is_write and not write_back:
        return False, False, None, False
    fill_dirty = is_write and write_back
    target = -1
    for wy, s in enumerate(cand):
        if tags[wy][s] < 0:
            target = wy
            break
    evicted = None
    evicted_dirty = False
    if target < 0:
        if policy is None:
            # LRU: smallest stamp wins, first way on ties (scalar ordering).
            best = None
            for wy, s in enumerate(cand):
                stamp = used[wy][s]
                if best is None or stamp < best:
                    best = stamp
                    target = wy
        else:
            target = policy.victim(cand)
        s = cand[target]
        evicted = tags[target][s]
        evicted_dirty = dirty[target][s]
        if evicted_dirty:
            stats.writebacks += 1
        stats.evictions += 1
    s = cand[target]
    tags[target][s] = block
    if policy is None:
        used[target][s] = clock
    else:
        policy.on_fill(target, s, clock)
    dirty[target][s] = fill_dirty
    return False, True, evicted, evicted_dirty


def _replay_l1(collect, l1: BatchSetAssociativeCache, ctx,
               blocks_l: List[int], l2blocks_l: List[int],
               writes_l: List[bool], start: int, stop: int) -> None:
    """Re-apply accesses ``[start, stop)`` after an epoch rewind.

    A replayed prefix is just a sequence of L1 accesses, so the epoch's own
    collect kernel re-runs it at full speed; the re-emitted miss stream is
    discarded (the L2 side already consumed the real one) and the hit
    outcomes are the ones the first pass recorded.
    """
    collect(l1, ctx, blocks_l, l2blocks_l, writes_l, start, stop)


# --------------------------------------------------------------------------- #
# residency oracle
# --------------------------------------------------------------------------- #


def _resident_block_set(cache: BatchSetAssociativeCache) -> set:
    """The set of blocks resident in ``cache`` right now.

    Built once per epoch so the residency oracle never has to recompute
    placement indices (the scalar GF(2) index of a skewed L1 costs more
    than the whole lookup it would serve).
    """
    resident: set = set()
    if not cache._use_flat:
        for d in cache._sets:
            resident.update(d)
        return resident
    for tags in cache._way_tags:
        for tag in tags:
            if tag >= 0:
                resident.add(tag)
    return resident


def _build_events(entries, blocks_l: List[int], alloc_on_store: bool,
                  ) -> Dict[int, List[Tuple[int, bool]]]:
    """Per-block fill (True) / evict (False) event lists of one epoch.

    Reconstructed from the miss stream itself — every fill is a miss entry
    that allocated (all of them except store misses under
    write-through/no-allocate) and every eviction is a recorded victim —
    so the collect hot loop never maintains event bookkeeping; only epochs
    whose consume pass actually sees an L2 eviction pay for this pass over
    the (much shorter) stream.
    """
    events: Dict[int, List[Tuple[int, bool]]] = {}
    for p, _lb, w, miss_entry, vb, _vd in entries:
        if not miss_entry:
            continue
        if vb >= 0:
            events.setdefault(vb, []).append((p, False))
        if not w or alloc_on_store:
            events.setdefault(blocks_l[p], []).append((p, True))
    return events


def _make_oracle(l1: BatchSetAssociativeCache, stream: "MissStream",
                 blocks_l: List[int], start_set: set) -> Callable[[int, int], bool]:
    """Lazy residency oracle: was ``block`` in L1 right after position ``pos``?

    Blocks with a fill/evict event before ``pos`` answer from the event
    lists; everything else falls back to the epoch-start resident set.
    Exact for every position up to the first back-invalidation — which is
    precisely where the consume pass stops.  The event index is built on
    first use, so epochs whose L2 never evicts (the common case while L2
    is filling) skip it entirely.
    """
    alloc_on_store = l1._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    state = {"events": None}

    def resident(block: int, pos: int) -> bool:
        events = state["events"]
        if events is None:
            events = state["events"] = _build_events(
                stream.entries, blocks_l, alloc_on_store)
        evs = events.get(block)
        if evs:
            i = bisect_right(evs, (pos, True))
            if i:
                return evs[i - 1][1]
        return block in start_set

    return resident


# --------------------------------------------------------------------------- #
# L1 collect kernels — run one epoch, emit the miss stream
# --------------------------------------------------------------------------- #


def _collect_kernel_name(l1: BatchSetAssociativeCache) -> str:
    if not l1._use_flat:
        return "collect-dict-lru"
    if l1._vec_policy is None and l1._ways == 2:
        return "collect-flat-lru-2way"
    return "collect-generic"


def _consume_kernel_name(l2: BatchSetAssociativeCache) -> str:
    return "consume-dict-lru" if not l2._use_flat else "consume-generic"


def _collect_dict_lru(l1, ctx, blocks_l, l2blocks_l, writes_l, start, end):
    sets_l = ctx
    sets_state = l1._sets
    ways = l1._ways
    write_back = l1._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    stats = l1.stats

    entries: List[Tuple[int, int, bool, bool, int, bool]] = []
    emit = entries.append
    loads = stores = load_misses = store_misses = evictions = writebacks = 0

    # zip over epoch slices — markedly faster in CPython than indexing four
    # lists per iteration, and the slices are one-off pointer copies.
    for p, b, w, s in zip(range(start, end), blocks_l[start:end],
                          writes_l[start:end], sets_l[start:end]):
        d = sets_state[s]
        if b in d:
            dirty = d.pop(b)
            d[b] = dirty or (w and write_back)
            if w:
                stores += 1
                emit((p, l2blocks_l[p], True, False, -1, False))
            else:
                loads += 1
            continue
        victim = -1
        vdirty = False
        if w:
            stores += 1
            store_misses += 1
        else:
            loads += 1
            load_misses += 1
        if not (w and not write_back):
            if len(d) >= ways:
                victim = next(iter(d))
                vdirty = d.pop(victim)
                if vdirty:
                    writebacks += 1
                evictions += 1
            d[b] = w and write_back
        emit((p, l2blocks_l[p], w, True, victim, vdirty))

    l1._clock += end - start
    stats.loads += loads
    stats.stores += stores
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return MissStream(entries)


def _collect_flat_lru_2way(l1, ctx, blocks_l, l2blocks_l, writes_l, start,
                           end):
    s0_l, s1_l = ctx
    t0, t1 = l1._way_tags
    u0, u1 = l1._way_used
    d0, d1 = l1._way_dirty
    write_back = l1._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    stats = l1.stats
    clock = l1._clock

    entries: List[Tuple[int, int, bool, bool, int, bool]] = []
    emit = entries.append
    loads = stores = load_misses = store_misses = evictions = writebacks = 0

    # zip over epoch slices — markedly faster in CPython than indexing four
    # lists per iteration, and the slices are one-off pointer copies.
    for p, b, w, sa, sb in zip(range(start, end), blocks_l[start:end],
                               writes_l[start:end], s0_l[start:end],
                               s1_l[start:end]):
        clock += 1
        if t0[sa] == b:
            u0[sa] = clock
            if w:
                stores += 1
                if write_back:
                    d0[sa] = True
                emit((p, l2blocks_l[p], True, False, -1, False))
            else:
                loads += 1
            continue
        if t1[sb] == b:
            u1[sb] = clock
            if w:
                stores += 1
                if write_back:
                    d1[sb] = True
                emit((p, l2blocks_l[p], True, False, -1, False))
            else:
                loads += 1
            continue
        # Miss.
        victim = -1
        vdirty = False
        if w:
            stores += 1
            store_misses += 1
        else:
            loads += 1
            load_misses += 1
        if not (w and not write_back):
            fill_dirty = w and write_back
            # Invalid frames first (in way order), then the LRU victim with
            # ties broken towards way 0 — the scalar `_fill` ordering.
            if t0[sa] < 0:
                t0[sa] = b
                u0[sa] = clock
                d0[sa] = fill_dirty
            elif t1[sb] < 0:
                t1[sb] = b
                u1[sb] = clock
                d1[sb] = fill_dirty
            elif u0[sa] <= u1[sb]:
                victim = t0[sa]
                vdirty = d0[sa]
                evictions += 1
                if vdirty:
                    writebacks += 1
                t0[sa] = b
                u0[sa] = clock
                d0[sa] = fill_dirty
            else:
                victim = t1[sb]
                vdirty = d1[sb]
                evictions += 1
                if vdirty:
                    writebacks += 1
                t1[sb] = b
                u1[sb] = clock
                d1[sb] = fill_dirty
        emit((p, l2blocks_l[p], w, True, victim, vdirty))

    l1._clock = clock
    stats.loads += loads
    stats.stores += stores
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return MissStream(entries)


def _collect_generic(l1, ctx, blocks_l, l2blocks_l, writes_l, start, end):
    entries: List[Tuple[int, int, bool, bool, int, bool]] = []
    with _policy_checkout(l1):
        for p in range(start, end):
            b = blocks_l[p]
            w = writes_l[p]
            hit, allocated, evicted, evicted_dirty = _cache_access_one(
                l1, b, w)
            if hit:
                if w:
                    entries.append((p, l2blocks_l[p], True, False, -1, False))
                continue
            victim = -1
            vdirty = False
            if allocated and evicted is not None:
                victim = evicted
                vdirty = evicted_dirty
            entries.append((p, l2blocks_l[p], w, True, victim, vdirty))
    return MissStream(entries)


_COLLECT_KERNELS = {
    "collect-dict-lru": _collect_dict_lru,
    "collect-flat-lru-2way": _collect_flat_lru_2way,
    "collect-generic": _collect_generic,
}


# --------------------------------------------------------------------------- #
# L2 consume kernels — replay the miss stream, detect cross-level feedback
# --------------------------------------------------------------------------- #


def _consume_dict_lru(l2, stream, l2_hits, enforce, targets_fn, oracle):
    """Consume a miss stream into a dict-layout LRU L2.

    Returns ``(stop_index, evicted_block)`` — the stream entry whose L2
    eviction requires a back-invalidation of a resident L1 line (the epoch
    must rewind past it), or ``(-1, -1)`` when the whole stream committed.
    The L2 access *at* the stop entry is committed (the scalar order is
    access first, back-invalidate second); entries after it are untouched.
    """
    entries = stream.entries
    n_entries = len(entries)
    stop_i = -1
    stop_evicted = -1
    if n_entries == 0:
        return stop_i, stop_evicted
    sets_l = l2._vec_index.way_indices(
        np.fromiter((e[1] for e in entries), dtype=np.int64,
                    count=n_entries), 0).tolist()
    sets_state = l2._sets
    ways = l2._ways
    write_back = l2._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    stats = l2.stats
    loads = stores = load_misses = store_misses = evictions = writebacks = 0
    hit_pos: List[int] = []
    miss_pos: List[int] = []
    hitp_a = hit_pos.append
    missp_a = miss_pos.append

    i = -1
    for i, (p, b, w, miss_entry, _vb, _vd), s in zip(range(n_entries),
                                                     entries, sets_l):
        d = sets_state[s]
        if b in d:
            dirty = d.pop(b)
            d[b] = dirty or (w and write_back)
            if w:
                stores += 1
            else:
                loads += 1
            if miss_entry:
                hitp_a(p)
            continue
        # L2 miss.
        if w:
            stores += 1
            store_misses += 1
        else:
            loads += 1
            load_misses += 1
        if miss_entry:
            missp_a(p)
        if w and not write_back:
            continue
        evicted = None
        if len(d) >= ways:
            evicted = next(iter(d))
            if d.pop(evicted):
                writebacks += 1
            evictions += 1
        d[b] = w and write_back
        # The scalar hierarchy only back-invalidates on L1-miss-driven L2
        # accesses (write-through store-hit propagation returns early).
        if evicted is not None and miss_entry and enforce:
            for x in targets_fn(evicted):
                if oracle(x, p):
                    stop_i = i
                    stop_evicted = evicted
                    break
            if stop_i >= 0:
                break

    # One fancy-indexed assignment per epoch instead of one NumPy scalar
    # write per entry.
    if hit_pos:
        l2_hits[hit_pos] = True
    if miss_pos:
        l2_hits[miss_pos] = False
    l2._clock += i + 1
    stats.loads += loads
    stats.stores += stores
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks
    return stop_i, stop_evicted


def _consume_generic(l2, stream, l2_hits, enforce, targets_fn, oracle):
    """Generic consume kernel (flat-layout / policy-backed L2)."""
    stop_i = -1
    stop_evicted = -1
    hit_pos: List[int] = []
    miss_pos: List[int] = []
    with _policy_checkout(l2):
        for i, (p, b, w, miss_entry, _vb, _vd) in enumerate(stream.entries):
            hit, _allocated, evicted, _ed = _cache_access_one(l2, b, w)
            if miss_entry:
                (hit_pos if hit else miss_pos).append(p)
            if not hit and evicted is not None and miss_entry and enforce:
                for x in targets_fn(evicted):
                    if oracle(x, p):
                        stop_i = i
                        stop_evicted = evicted
                        break
                if stop_i >= 0:
                    break
    if hit_pos:
        l2_hits[hit_pos] = True
    if miss_pos:
        l2_hits[miss_pos] = False
    return stop_i, stop_evicted


_CONSUME_KERNELS = {
    "consume-dict-lru": _consume_dict_lru,
    "consume-generic": _consume_generic,
}


# --------------------------------------------------------------------------- #
# the shared epoch loop
# --------------------------------------------------------------------------- #


def _run_epoch_stream(h, blocks_arr, blocks_l, l2blocks_l, writes_l,
                      l1_hits, l2_hits, enforce, targets_fn) -> None:
    """Drive the collect/consume epoch loop for either hierarchy twin.

    ``h`` provides ``l1``/``l2``, the epoch counters and ``_apply_stop``.
    """
    l1 = h.l1
    l2 = h.l2
    collect = _COLLECT_KERNELS[h.l1_collect_kernel]
    consume = _CONSUME_KERNELS[h.l2_consume_kernel]
    if h.l1_collect_kernel == "collect-dict-lru":
        ctx = cached_set_index_lists(l1._vec_index, blocks_arr, 0)
    elif h.l1_collect_kernel == "collect-flat-lru-2way":
        ctx = (cached_set_index_lists(l1._vec_index, blocks_arr, 0),
               cached_set_index_lists(l1._vec_index, blocks_arr, 1))
    else:
        ctx = None

    n = len(blocks_l)
    pos = 0
    size = h._epoch_hint or _EPOCH_START
    if not enforce:
        # No back-invalidation feedback: one epoch covers the whole batch.
        size = n
    while pos < n:
        end = min(pos + size, n)
        snap = l1._snapshot_state() if enforce else None
        start_set = _resident_block_set(l1) if enforce else None
        stream = collect(l1, ctx, blocks_l, l2blocks_l, writes_l, pos, end)
        # The L1 hit mask falls out of the stream: every L1 miss is a
        # stream entry flagged ``is_l1_miss`` and everything else hit.
        l1_hits[pos:end] = True
        miss_pos = [e[0] for e in stream.entries if e[3]]
        if miss_pos:
            l1_hits[miss_pos] = False
        h.epochs += 1
        h.stream_entries += len(stream)
        oracle = (_make_oracle(l1, stream, blocks_l, start_set)
                  if enforce else None)
        stop_i, stop_evicted = consume(l2, stream, l2_hits, enforce,
                                       targets_fn, oracle)
        if stop_i < 0:
            pos = end
            if h._epoch_hint is None and enforce:
                size = min(size * 2, _EPOCH_MAX)
            continue
        # Cross-level feedback: rewind L1 to the epoch start, replay the
        # committed prefix scalar-exactly, then apply the back-invalidation
        # with the scalar hole accounting.  L2 is already exact through the
        # stop entry and was never touched past it.
        p = stream.entries[stop_i][0]
        l1._restore_state(snap)
        _replay_l1(collect, l1, ctx, blocks_l, l2blocks_l, writes_l,
                   pos, p + 1)
        h._apply_stop(stop_evicted, blocks_l[p])
        h.rewinds += 1
        pos = p + 1
        if h._epoch_hint is None:
            size = max(_EPOCH_MIN, size // 2)



def _check_level(cache, label: str) -> None:
    if not isinstance(cache, BatchSetAssociativeCache):
        raise TypeError(
            f"{label} must be a BatchSetAssociativeCache, "
            f"got {type(cache).__name__}"
        )
    if cache._classifier is not None:
        raise ValueError(
            "the batch multi-level engine does not support 3C miss "
            f"classification (enabled on {label})"
        )


# --------------------------------------------------------------------------- #
# the batch twins
# --------------------------------------------------------------------------- #


class BatchTwoLevelHierarchy:
    """Batch twin of :class:`~repro.cache.hierarchy.TwoLevelHierarchy`.

    Same construction rules and counters; :meth:`run` consumes an
    :class:`AddressBatch` and leaves both levels' state, statistics and the
    hole counters exactly where the scalar model would after the same trace.

    ``epoch_hint`` pins the epoch size (normally adaptive) — useful to force
    tiny epochs in stress tests so the stop/rewind path is exercised.
    """

    def __init__(self, l1: BatchSetAssociativeCache,
                 l2: BatchSetAssociativeCache,
                 enforce_inclusion: bool = True,
                 epoch_hint: Optional[int] = None) -> None:
        _check_level(l1, "L1")
        _check_level(l2, "L2")
        if l1.block_size > l2.block_size:
            raise ValueError(
                "L1 block size must not exceed the L2 block size "
                f"({l1.block_size} vs {l2.block_size})"
            )
        if l2.block_size % l1.block_size:
            raise ValueError(
                "L2 block size must be a multiple of the L1 block size "
                f"({l2.block_size} vs {l1.block_size})"
            )
        if l2.size_bytes < l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")
        if epoch_hint is not None and epoch_hint < 1:
            raise ValueError("epoch_hint must be positive")
        self.l1 = l1
        self.l2 = l2
        self._ratio = l2.block_size // l1.block_size
        self._enforce_inclusion = enforce_inclusion
        self._epoch_hint = epoch_hint

        self.holes_created = 0
        self.l2_misses_causing_holes = 0
        self.back_invalidations = 0
        self.epochs = 0
        self.rewinds = 0
        self.stream_entries = 0

    # -- introspection -------------------------------------------------- #

    @property
    def inclusion_enforced(self) -> bool:
        """Whether back-invalidation is active."""
        return self._enforce_inclusion

    def dispatch_strategy(self, batch: Optional[AddressBatch] = None) -> str:
        """Name of the composition :meth:`run` will execute.

        ``"hierarchy-epoch-stream"`` when inclusion is enforced (epochs with
        stop/rewind), ``"hierarchy-stream"`` otherwise (one straight-line
        collect/consume pass — no feedback exists without back-invalidation).
        """
        return ("hierarchy-epoch-stream" if self._enforce_inclusion
                else "hierarchy-stream")

    @property
    def l1_collect_kernel(self) -> str:
        """Collect kernel serving L1 (``collect-*``)."""
        return _collect_kernel_name(self.l1)

    @property
    def l2_consume_kernel(self) -> str:
        """Consume kernel serving L2 (``consume-*``)."""
        return _consume_kernel_name(self.l2)

    # -- scalar-identical protocol helpers ------------------------------ #

    def _l2_block_of_l1_block(self, l1_block: int) -> int:
        return l1_block // self._ratio

    def _l1_blocks_of_l2_block(self, l2_block: int) -> Iterable[int]:
        start = l2_block * self._ratio
        return range(start, start + self._ratio)

    def _apply_stop(self, evicted_l2_block: int, filling_l1_block: int) -> None:
        """Scalar ``_back_invalidate`` + hole accounting at a stop point."""
        hole = False
        for l1_block in self._l1_blocks_of_l2_block(evicted_l2_block):
            if self.l1.invalidate_block(l1_block):
                self.back_invalidations += 1
                if l1_block != filling_l1_block:
                    hole = True
                    self.holes_created += 1
                    self.l1.stats.holes_created += 1
        if hole:
            self.l2_misses_causing_holes += 1

    # -- simulation ------------------------------------------------------ #

    def run(self, batch: AddressBatch) -> HierarchyBatchResult:
        """Simulate a whole batch; state carries over to the next call."""
        n = len(batch)
        l1_hits = np.zeros(n, dtype=bool)
        l2_hits = np.ones(n, dtype=bool)
        result = HierarchyBatchResult(l1_hits, l2_hits)
        if n == 0:
            return result
        blocks_arr = cached_block_numbers(batch, self.l1.block_size)
        blocks_l = blocks_arr.tolist()
        if self.l1.block_size == self.l2.block_size:
            # Equal block sizes: L2 block numbers ARE the L1 block numbers,
            # so reuse the list instead of paying a second 1M-element
            # ndarray->list conversion.
            l2blocks_l = blocks_l
        else:
            l2blocks_l = cached_block_numbers(
                batch, self.l2.block_size).tolist()
        _run_epoch_stream(
            self, blocks_arr, blocks_l, l2blocks_l,
            batch.is_write.tolist(), l1_hits, l2_hits,
            self._enforce_inclusion, self._l1_blocks_of_l2_block)
        return result

    # -- derived metrics (mirror the scalar model) ----------------------- #

    @property
    def l2_miss_count(self) -> int:
        """Number of L2 misses observed so far."""
        return self.l2.stats.misses

    @property
    def hole_rate_per_l2_miss(self) -> float:
        """Fraction of L2 misses that created at least one L1 hole."""
        misses = self.l2_miss_count
        return self.l2_misses_causing_holes / misses if misses else 0.0

    def check_inclusion(self) -> bool:
        """Verify that every valid L1 block is also present in L2."""
        if not self._enforce_inclusion:
            return True
        l2_resident = set(self.l2.resident_blocks())
        return all(self._l2_block_of_l1_block(b) in l2_resident
                   for b in self.l1.resident_blocks())

    def flush(self) -> None:
        """Empty both levels."""
        self.l1.flush()
        self.l2.flush()


class BatchVirtualRealHierarchy:
    """Batch twin of :class:`~repro.cache.virtual_real.VirtualRealHierarchy`.

    Instead of a scalar ``translate`` callable it takes the
    :class:`~repro.memory.paging.PageTable` itself (plus an optional TLB),
    because translation must run array-at-a-time in front of the index
    pipeline; page faults happen in first-touch trace order so the table,
    the fault counter and the TLB counters stay bit-exact with per-access
    translation (see :mod:`repro.engine.translate_vec`).
    """

    def __init__(self, l1: BatchSetAssociativeCache,
                 l2: BatchSetAssociativeCache,
                 page_table: PageTable,
                 tlb: Optional[TLB] = None,
                 epoch_hint: Optional[int] = None) -> None:
        _check_level(l1, "L1")
        _check_level(l2, "L2")
        if l1.block_size != l2.block_size:
            raise ValueError(
                "the virtual-real protocol requires equal L1/L2 block sizes "
                f"({l1.block_size} vs {l2.block_size})"
            )
        if l2.size_bytes < l1.size_bytes:
            raise ValueError("L2 must be at least as large as L1")
        page_size = page_table.page_size
        if page_size < l1.block_size or page_size % l1.block_size:
            raise ValueError(
                "page_size must be a multiple of the cache block size "
                f"({page_size} vs {l1.block_size})"
            )
        if tlb is not None and tlb._page_size != page_size:
            raise ValueError("TLB and page table must agree on page size")
        if epoch_hint is not None and epoch_hint < 1:
            raise ValueError("epoch_hint must be positive")
        self.l1 = l1
        self.l2 = l2
        self._page_table = page_table
        self._tlb = tlb
        self._bpp = page_size // l1.block_size  # cache blocks per page
        self._epoch_hint = epoch_hint
        # Same pointer state as the scalar protocol; during an epoch run the
        # maps are not maintained inline but rebuilt from L1 residency after
        # the batch (exact under an injective frame mapping — see run()).
        self._virt_of_phys: Dict[int, int] = {}
        self._phys_of_virt: Dict[int, int] = {}
        self._targets_fn: Optional[Callable[[int], Tuple[int, ...]]] = None

        self.alias_invalidations = 0
        self.holes_created = 0
        self.l2_misses_causing_holes = 0
        self.external_invalidations = 0
        self.epochs = 0
        self.rewinds = 0
        self.stream_entries = 0

    # -- introspection -------------------------------------------------- #

    @property
    def page_table(self) -> PageTable:
        """The page table translating this hierarchy's virtual addresses."""
        return self._page_table

    @property
    def tlb(self) -> Optional[TLB]:
        """The TLB fronting translation, if any."""
        return self._tlb

    def dispatch_strategy(self, batch: Optional[AddressBatch] = None) -> str:
        """Name of the composition :meth:`run` will execute.

        ``"vr-epoch-stream"`` when the virtual->physical frame mapping is
        injective (then alias invalidations are impossible and the inverse
        frame map is an exact back-invalidation oracle); ``"vr-fused"`` when
        the mapping holds duplicate frames — or a sequential allocator could
        collide with a pre-seeded frame — in which case a per-access
        transliteration of the scalar protocol runs instead.  The scatter
        allocator rejection-samples against frames in use, so allocation
        during the batch can never *create* an alias.
        """
        mapping = self._page_table._mapping
        frames = list(mapping.values())
        if len(set(frames)) != len(frames):
            return "vr-fused"
        if (self._page_table._allocation == "sequential" and frames
                and max(frames) >= self._page_table._next_frame):
            return "vr-fused"
        return "vr-epoch-stream"

    @property
    def l1_collect_kernel(self) -> str:
        """Collect kernel serving L1 (``collect-*``)."""
        return _collect_kernel_name(self.l1)

    @property
    def l2_consume_kernel(self) -> str:
        """Consume kernel serving L2 (``consume-*``)."""
        return _consume_kernel_name(self.l2)

    # -- scalar-identical protocol helpers ------------------------------ #

    def _map(self, virt_block: int, phys_block: int) -> None:
        self._phys_of_virt[virt_block] = phys_block
        self._virt_of_phys[phys_block] = virt_block

    def _unmap(self, virt_block: int) -> None:
        phys = self._phys_of_virt.pop(virt_block, None)
        if phys is not None and self._virt_of_phys.get(phys) == virt_block:
            del self._virt_of_phys[phys]

    def _apply_stop(self, evicted_phys_block: int,
                    filling_virt_block: int) -> None:
        """Scalar ``_handle_l2_eviction`` + hole accounting at a stop."""
        hole = False
        for virt_block in self._targets_fn(evicted_phys_block):
            if self.l1.invalidate_block(virt_block):
                if virt_block != filling_virt_block:
                    hole = True
                    self.holes_created += 1
                    self.l1.stats.holes_created += 1
        if hole:
            self.l2_misses_causing_holes += 1

    def _rebuild_maps(self) -> None:
        """Restore the scalar pointer state from L1 residency.

        Under an injective frame mapping the scalar maps are exactly
        ``{resident L1 virtual line -> its physical line}`` at all times, so
        rebuilding after the batch reproduces them bit-exactly.
        """
        mapping = self._page_table._mapping
        bpp = self._bpp
        self._virt_of_phys.clear()
        self._phys_of_virt.clear()
        for virt_block in self.l1.resident_blocks():
            frame = mapping[virt_block // bpp]
            phys_block = frame * bpp + virt_block % bpp
            self._phys_of_virt[virt_block] = phys_block
            self._virt_of_phys[phys_block] = virt_block

    # -- simulation ------------------------------------------------------ #

    def run(self, batch: AddressBatch) -> HierarchyBatchResult:
        """Simulate a whole batch of virtual addresses."""
        n = len(batch)
        l1_hits = np.zeros(n, dtype=bool)
        l2_hits = np.ones(n, dtype=bool)
        result = HierarchyBatchResult(l1_hits, l2_hits)
        if n == 0:
            return result
        strategy = self.dispatch_strategy(batch)
        # AddressBatch stores uint64; mixing with the int64 translation
        # arrays would promote to float64, so cast once up front (batches
        # validate addresses < 2**63).
        addr = batch.addresses.astype(np.int64)
        vpns, frames = batch_page_frames(self._page_table, addr)
        if self._tlb is not None:
            run_tlb_kernel(self._tlb, vpns, frames)
        page = self._page_table.page_size
        phys = frames * page + (addr - vpns * page)
        block_size = self.l1.block_size
        virt_blocks = cached_block_numbers(batch, block_size)
        phys_blocks = phys // block_size
        writes_l = batch.is_write.tolist()

        if strategy == "vr-fused":
            self._run_fused(virt_blocks.tolist(), phys_blocks.tolist(),
                            writes_l, l1_hits, l2_hits)
            return result

        # Epoch path: injective frame mapping, so the inverse map recovers
        # the unique L1 virtual line an evicted physical line could shadow.
        bpp = self._bpp
        inv_frame = {f: v for v, f in self._page_table._mapping.items()}

        def targets_fn(phys_block: int) -> Tuple[int, ...]:
            vpn = inv_frame.get(phys_block // bpp)
            if vpn is None:
                return ()
            return (vpn * bpp + phys_block % bpp,)

        self._targets_fn = targets_fn
        try:
            _run_epoch_stream(
                self, virt_blocks, virt_blocks.tolist(),
                phys_blocks.tolist(), writes_l, l1_hits, l2_hits,
                True, targets_fn)
        finally:
            self._targets_fn = None
        self._rebuild_maps()
        return result

    def _run_fused(self, virt_l: List[int], phys_l: List[int],
                   writes_l: List[bool], l1_hits: np.ndarray,
                   l2_hits: np.ndarray) -> None:
        """Per-access transliteration of the scalar protocol (alias-capable)."""
        l1 = self.l1
        l2 = self.l2
        virt_of_phys = self._virt_of_phys
        with _policy_checkout(l1), _policy_checkout(l2):
            for p, (vb, pb) in enumerate(zip(virt_l, phys_l)):
                w = writes_l[p]
                resident_virt = virt_of_phys.get(pb)
                if resident_virt is not None and resident_virt != vb:
                    if l1.invalidate_block(resident_virt):
                        self.alias_invalidations += 1
                    self._unmap(resident_virt)
                hit, allocated, evicted, _ed = _cache_access_one(l1, vb, w)
                if hit:
                    l1_hits[p] = True
                    if w:
                        _cache_access_one(l2, pb, True)
                    continue
                if evicted is not None:
                    self._unmap(evicted)
                if allocated:
                    self._map(vb, pb)
                l2_hit, _a2, evicted2, _ed2 = _cache_access_one(l2, pb, w)
                l2_hits[p] = l2_hit
                if not l2_hit and evicted2 is not None:
                    if self._handle_l2_eviction(evicted2, vb):
                        self.l2_misses_causing_holes += 1

    def _handle_l2_eviction(self, evicted_phys_block: int,
                            filling_virt_block: Optional[int]) -> bool:
        """Scalar ``_handle_l2_eviction`` against the maintained maps."""
        virt_block = self._virt_of_phys.get(evicted_phys_block)
        if virt_block is None:
            return False
        invalidated = self.l1.invalidate_block(virt_block)
        self._unmap(virt_block)
        if not invalidated:
            return False
        if (filling_virt_block is not None
                and virt_block == filling_virt_block):
            return False
        self.holes_created += 1
        self.l1.stats.holes_created += 1
        return True

    def external_invalidate(self, physical_address: int) -> bool:
        """Scalar-identical physically-addressed coherence invalidation."""
        phys_block = self.l2.block_number_of(physical_address)
        self.l2.invalidate_block(phys_block)
        virt_block = self._virt_of_phys.get(phys_block)
        if virt_block is None:
            return False
        invalidated = self.l1.invalidate_block(virt_block)
        self._unmap(virt_block)
        if invalidated:
            self.external_invalidations += 1
        return invalidated

    # -- derived metrics (mirror the scalar model) ----------------------- #

    @property
    def hole_rate_per_l2_miss(self) -> float:
        """Fraction of L2 misses that created an L1 hole."""
        misses = self.l2.stats.misses
        return self.l2_misses_causing_holes / misses if misses else 0.0

    def check_inclusion(self) -> bool:
        """Verify that every valid L1 line's physical image is present in L2."""
        l2_resident = set(self.l2.resident_blocks())
        for virt_block in self.l1.resident_blocks():
            phys_block = self._phys_of_virt.get(virt_block)
            if phys_block is None or phys_block not in l2_resident:
                return False
        return True

    def flush(self) -> None:
        """Empty both levels and the alias maps."""
        self.l1.flush()
        self.l2.flush()
        self._virt_of_phys.clear()
        self._phys_of_virt.clear()


# --------------------------------------------------------------------------- #
# convenience constructors (mirror engine.replay.batch_cache_like)
# --------------------------------------------------------------------------- #


def batch_hierarchy_like(hierarchy,
                         epoch_hint: Optional[int] = None
                         ) -> BatchTwoLevelHierarchy:
    """Build a cold batch twin of a scalar :class:`TwoLevelHierarchy`."""
    from .replay import batch_cache_like

    return BatchTwoLevelHierarchy(
        batch_cache_like(hierarchy.l1), batch_cache_like(hierarchy.l2),
        enforce_inclusion=hierarchy.inclusion_enforced,
        epoch_hint=epoch_hint)


def batch_virtual_real_like(vr, page_table: PageTable,
                            tlb: Optional[TLB] = None,
                            epoch_hint: Optional[int] = None
                            ) -> BatchVirtualRealHierarchy:
    """Build a cold batch twin of a scalar :class:`VirtualRealHierarchy`.

    The scalar model only holds a ``translate`` callable, so the page table
    (and TLB, if the scalar side translated through one) must be supplied
    explicitly — give the twin its *own* fresh ``PageTable``/``TLB`` seeded
    identically, since translation mutates them.
    """
    from .replay import batch_cache_like

    return BatchVirtualRealHierarchy(
        batch_cache_like(vr.l1), batch_cache_like(vr.l2), page_table,
        tlb=tlb, epoch_hint=epoch_hint)
