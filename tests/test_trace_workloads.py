"""Tests for the synthetic Spec95-like trace workload models."""

import pytest

from repro.cache import FullyAssociativeCache, SetAssociativeCache
from repro.core import make_index_function
from repro.trace.workloads import (
    FP_PROGRAMS,
    HIGH_CONFLICT_PROGRAMS,
    INTEGER_PROGRAMS,
    LOW_CONFLICT_PROGRAMS,
    WORKLOADS,
    WorkloadSpec,
    build_trace,
    workload_names,
)


def miss_ratio(name, size_bytes, scheme, accesses=25_000):
    sets = size_bytes // (32 * 2)
    fn = make_index_function(scheme, num_sets=sets, ways=2, address_bits=19)
    cache = SetAssociativeCache(size_bytes, 32, 2, index_function=fn)
    for access in build_trace(name, length=accesses):
        cache.access(access.address, is_write=access.is_write)
    return cache.stats.load_miss_ratio


class TestCatalogue:
    def test_eighteen_programs(self):
        assert len(WORKLOADS) == 18
        assert len(workload_names()) == 18

    def test_partition_into_groups(self):
        assert set(HIGH_CONFLICT_PROGRAMS) == {"tomcatv", "swim", "wave5"}
        assert len(LOW_CONFLICT_PROGRAMS) == 15
        assert set(INTEGER_PROGRAMS) | set(FP_PROGRAMS) == set(WORKLOADS)
        assert not set(INTEGER_PROGRAMS) & set(FP_PROGRAMS)
        assert len(INTEGER_PROGRAMS) == 8 and len(FP_PROGRAMS) == 10

    def test_high_conflict_programs_have_conflict_components(self):
        for name in HIGH_CONFLICT_PROGRAMS:
            assert WORKLOADS[name].conflict_fraction > 0.2

    def test_low_conflict_programs_have_small_conflict_components(self):
        for name in LOW_CONFLICT_PROGRAMS:
            assert WORKLOADS[name].conflict_fraction < 0.05

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", conflict_fraction=0.8, stream_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadSpec("x", conflict_fraction=0.1, stream_fraction=0.1,
                         conflict_arrays=2)


class TestTraceGeneration:
    def test_deterministic(self):
        a = [(x.address, x.is_write) for x in build_trace("swim", length=500)]
        b = [(x.address, x.is_write) for x in build_trace("swim", length=500)]
        assert a == b

    def test_seed_changes_trace(self):
        a = [x.address for x in build_trace("gcc", length=500, seed=1)]
        b = [x.address for x in build_trace("gcc", length=500, seed=2)]
        assert a != b

    def test_length_respected(self):
        assert sum(1 for _ in build_trace("li", length=321)) == 321

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            list(build_trace("doom", length=10))

    def test_contains_writes(self):
        assert any(a.is_write for a in build_trace("compress", length=2000))


class TestBehaviouralShape:
    """The properties the Table 2 reproduction depends on."""

    @pytest.mark.parametrize("name", HIGH_CONFLICT_PROGRAMS)
    def test_ipoly_removes_most_misses_of_bad_programs(self, name):
        conventional = miss_ratio(name, 8 * 1024, "a2")
        ipoly = miss_ratio(name, 8 * 1024, "a2-Hp-Sk")
        assert conventional > 0.35
        assert ipoly < conventional / 2

    @pytest.mark.parametrize("name", ["gcc", "compress", "hydro2d", "fpppp"])
    def test_indexing_insensitive_for_good_programs(self, name):
        conventional = miss_ratio(name, 8 * 1024, "a2")
        ipoly = miss_ratio(name, 8 * 1024, "a2-Hp-Sk")
        assert abs(conventional - ipoly) < 0.05

    @pytest.mark.parametrize("name", ["gcc", "li", "swim"])
    def test_doubling_the_cache_helps(self, name):
        small = miss_ratio(name, 8 * 1024, "a2")
        large = miss_ratio(name, 16 * 1024, "a2")
        assert large < small

    def test_ipoly_8k_beats_conventional_16k_for_bad_programs(self):
        """The paper's headline: I-Poly at 8 KB outperforms doubling the cache."""
        for name in HIGH_CONFLICT_PROGRAMS:
            assert miss_ratio(name, 8 * 1024, "a2-Hp-Sk") < miss_ratio(
                name, 16 * 1024, "a2")

    def test_ipoly_close_to_fully_associative(self):
        """Section 2.1: the I-Poly cache approaches full associativity."""
        for name in ["swim", "gcc"]:
            full = FullyAssociativeCache(8 * 1024, 32)
            for access in build_trace(name, length=25_000):
                full.access(access.address, is_write=access.is_write)
            ipoly = miss_ratio(name, 8 * 1024, "a2-Hp-Sk")
            assert ipoly <= full.stats.load_miss_ratio + 0.06
