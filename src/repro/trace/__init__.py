"""Address traces: records, synthetic generators, workload models and I/O.

NumPy materialization lives in :mod:`repro.trace.batching` and the packed v2
streaming layer in :mod:`repro.trace.stream`; both are deliberately *not*
imported here (the streaming names below resolve lazily) so that the scalar
reference path (this package, the cache models and the cpu simulator) stays
importable without NumPy.
"""

from .generators import (
    interleave,
    matrix_traversal,
    multi_array_sweep,
    pointer_chase,
    random_accesses,
    strided_vector,
    tiled_matrix_multiply,
)
from .record import MemoryAccess, materialise, replay, trace_length
from .trace_io import (
    TraceReader,
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)
from .workloads import (
    FP_PROGRAMS,
    HIGH_CONFLICT_PROGRAMS,
    INTEGER_PROGRAMS,
    LOW_CONFLICT_PROGRAMS,
    WORKLOADS,
    WorkloadSpec,
    build_trace,
    workload_names,
)

#: Streaming-layer names served lazily out of :mod:`repro.trace.stream`
#: (which needs NumPy) by :func:`__getattr__` below.
_STREAM_EXPORTS = (
    "TRACE_V2_MAGIC",
    "TRACE_V2_HEADER_SIZE",
    "TRACE_V2_RECORD_BYTES",
    "DEFAULT_CHUNK_SIZE",
    "TraceFormat",
    "TraceColumns",
    "TraceV2Writer",
    "detect_trace_format",
    "write_trace_v2",
    "read_trace_v2",
    "read_din_trace",
    "import_din_trace",
    "convert_trace",
    "read_trace_records",
    "iter_trace_chunks",
    "trace_record_count",
)

__all__ = [
    "MemoryAccess",
    "trace_length",
    "materialise",
    "replay",
    "TraceReader",
    *_STREAM_EXPORTS,
    "strided_vector",
    "multi_array_sweep",
    "matrix_traversal",
    "tiled_matrix_multiply",
    "pointer_chase",
    "random_accesses",
    "interleave",
    "write_text_trace",
    "read_text_trace",
    "write_binary_trace",
    "read_binary_trace",
    "WorkloadSpec",
    "WORKLOADS",
    "HIGH_CONFLICT_PROGRAMS",
    "LOW_CONFLICT_PROGRAMS",
    "INTEGER_PROGRAMS",
    "FP_PROGRAMS",
    "build_trace",
    "workload_names",
]


def __getattr__(name):
    if name in _STREAM_EXPORTS:
        from . import stream
        return getattr(stream, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
