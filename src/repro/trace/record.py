"""Memory-access trace records.

A trace is simply an iterable of :class:`MemoryAccess` records.  Generators
produce them lazily so multi-million-access experiments do not need the whole
trace in memory; :mod:`repro.trace.trace_io` can persist them when a fixed
trace needs to be replayed across many cache configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

__all__ = ["MemoryAccess", "trace_length", "materialise"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference.

    Attributes
    ----------
    address:
        Virtual byte address.
    is_write:
        True for stores, False for loads.
    pc:
        Program counter of the issuing instruction (0 when not modelled);
        used by the address-prediction experiments, which index their table
        by instruction address.
    size:
        Access width in bytes (informational; the caches work at block
        granularity).
    """

    address: int
    is_write: bool = False
    pc: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.pc < 0:
            raise ValueError("pc must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")


def trace_length(trace: Iterable[MemoryAccess]) -> int:
    """Count the records in a trace (consumes generators)."""
    return sum(1 for _ in trace)


def materialise(trace: Iterable[MemoryAccess]) -> List[MemoryAccess]:
    """Realise a lazy trace into a list (for replay across configurations)."""
    return list(trace)


def replay(trace: Iterable[MemoryAccess], cache) -> None:
    """Drive any cache-like object (with an ``access`` method) with a trace."""
    for access in trace:
        cache.access(access.address, is_write=access.is_write)


def iter_addresses(trace: Iterable[MemoryAccess]) -> Iterator[int]:
    """Yield just the addresses of a trace."""
    for access in trace:
        yield access.address
