"""Report formatting: ASCII tables and CSV emitters.

The experiment drivers produce dictionaries of per-program metrics; this
module turns them into the row/column layout the paper's Tables 2 and 3 use,
so a benchmark run prints something directly comparable to the published
tables.  Output is plain text (and optionally CSV) — no plotting dependencies.
"""

from __future__ import annotations

import io
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_csv", "TableBuilder"]

Number = Union[int, float]
Cell = Union[str, Number, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 precision: int = 2, title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [[_format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
               precision: int = 4) -> str:
    """Render rows as CSV text (no external csv module quirks, values are simple)."""
    buffer = io.StringIO()
    buffer.write(",".join(headers) + "\n")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        buffer.write(",".join(_format_cell(c, precision) for c in row) + "\n")
    return buffer.getvalue()


class TableBuilder:
    """Accumulates named rows of named columns, then renders them.

    This matches how the experiment drivers work: they compute one row per
    program (plus average rows), each with a metric per configuration, and
    want the columns in a fixed order regardless of insertion order.
    """

    def __init__(self, columns: Sequence[str], row_label: str = "program") -> None:
        if not columns:
            raise ValueError("at least one column is required")
        self._columns = list(columns)
        self._row_label = row_label
        self._rows: List[str] = []
        self._data: Dict[str, Dict[str, Cell]] = {}

    @property
    def columns(self) -> List[str]:
        """Column names, in display order."""
        return list(self._columns)

    @property
    def row_names(self) -> List[str]:
        """Row names, in insertion order."""
        return list(self._rows)

    def add_row(self, name: str, values: Optional[Mapping[str, Cell]] = None) -> None:
        """Add (or extend) a row from a column->value mapping."""
        if name not in self._data:
            self._data[name] = {}
            self._rows.append(name)
        if values:
            unknown = set(values) - set(self._columns)
            if unknown:
                raise KeyError(f"unknown columns {sorted(unknown)}")
            self._data[name].update(values)

    def set(self, row: str, column: str, value: Cell) -> None:
        """Set one cell, creating the row on demand."""
        if column not in self._columns:
            raise KeyError(f"unknown column {column!r}")
        self.add_row(row)
        self._data[row][column] = value

    def get(self, row: str, column: str) -> Cell:
        """Read one cell (None when unset)."""
        return self._data.get(row, {}).get(column)

    def column_values(self, column: str, rows: Optional[Sequence[str]] = None) -> List[float]:
        """Numeric values of a column over the given rows (skips unset cells)."""
        rows = list(rows) if rows is not None else self._rows
        values = []
        for row in rows:
            value = self.get(row, column)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        return values

    def as_rows(self) -> List[List[Cell]]:
        """Materialise the table as a list of rows including the row-name column."""
        return [[name] + [self._data[name].get(col) for col in self._columns]
                for name in self._rows]

    def render(self, precision: int = 2, title: str = "") -> str:
        """Render as an ASCII table."""
        return format_table([self._row_label] + self._columns, self.as_rows(),
                            precision=precision, title=title)

    def render_csv(self, precision: int = 4) -> str:
        """Render as CSV."""
        return format_csv([self._row_label] + self._columns, self.as_rows(),
                          precision=precision)
