"""Set-decomposed replacement kernels for non-skewed batch caches.

The generic replacement kernel in
:class:`~repro.engine.batch_cache.BatchSetAssociativeCache` replays one
access at a time through per-way flat tables and policy method calls — the
right shape for skewed placement (where one access's candidate frames live in
different sets per way) but needlessly general for a *conventional*
organisation, where every access touches exactly one set and the sets are
completely independent.  This module exploits that independence: the
pre-computed set indices are stably grouped (one argsort), each set's access
subsequence is simulated over dense local state, and the per-access hit mask
is scattered back in one vectorized store.  Three policy-specific kernels:

* **FIFO** — hits never mutate FIFO state, so the per-access work on the hot
  (hit) path is a couple of comparisons against local tags; only the
  miss/fill sequence replays any bookkeeping.  Victim order is kept via the
  same fill-timestamp comparison as the scalar policy (ties to the lowest
  way), so warm starts from — and hand-offs back to — the generic kernel are
  bit-exact.
* **Tree-PLRU** — the per-set direction-bit tree is walked over a small local
  list (a single direction flag for the 2-way specialisation) instead of
  per-access indexing into global ``[way][set]`` tables.  The never-consulted
  (in a non-skewed cache) LRU-fallback timestamps are still maintained, so
  the NumPy state tables stay byte-identical with the generic kernel's.
* **Random** — the counter-based draw is a pure function of the eviction
  ordinal (``splitmix64(seed + n)``), so the whole batch's victim picks are
  precomputed in one vectorized pass
  (:func:`~repro.engine.replacement_vec.splitmix64_array`).  Because the
  ordinal is defined by the *global* eviction order across sets, this kernel
  keeps trace order and instead keeps its state dense per set (flat per-way
  tag rows, or per-set resident maps above two ways) — bit-exact victim
  sequences at a fraction of the per-access cost.

All kernels support stores under both write policies (including dirty-line
writeback accounting), warm caches, and any associativity; each has a tight
two-way specialisation (the paper's geometry) and a dense generic-ways
variant whose hit probe is a single per-set dict lookup — which is also what
makes non-LRU *fully-associative* simulation tractable (the generic kernel's
linear way scan is O(associativity) per access).

The 3C miss classifier is the one feature the decomposition cannot serve: its
capacity/conflict split replays a fully-associative shadow cache in global
trace order, so classifying caches stay on the generic kernel
(:meth:`~repro.engine.batch_cache.BatchSetAssociativeCache._run_policy_kernel`),
which also remains the reference implementation the differential suite pits
these kernels against.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Tuple

import numpy as np

from ..cache.replacement import plru_touch, plru_victim
from ..cache.set_assoc import WritePolicy
from .replacement_vec import splitmix64_array

__all__ = ["group_by_set", "run_decomposed_policy"]


def group_by_set(sets: np.ndarray) -> Tuple[np.ndarray, List[int], List[int],
                                            List[int]]:
    """Stably group a batch's set indices into per-set subsequences.

    Returns ``(order, starts, stops, set_ids)``: ``order`` is the stable
    permutation that sorts accesses by set (preserving trace order within a
    set), and group ``k`` spans ``order[starts[k]:stops[k]]`` with set index
    ``set_ids[k]``.
    """
    n = sets.shape[0]
    order = np.argsort(sets, kind="stable")
    gs = sets[order]
    boundary = np.flatnonzero(gs[1:] != gs[:-1]) + 1
    starts = np.concatenate(([0], boundary))
    stops = np.concatenate((boundary, [n]))
    return order, starts.tolist(), stops.tolist(), gs[starts].tolist()


def run_decomposed_policy(cache, blocks: np.ndarray, sets: np.ndarray,
                          is_write: np.ndarray) -> np.ndarray:
    """Run one batch through the set-decomposed kernel for the cache's policy.

    ``cache`` is a non-skewed, classifier-free
    :class:`~repro.engine.batch_cache.BatchSetAssociativeCache` with a bound
    non-LRU policy; ``sets`` is the (shared across ways) int64 set-index
    array for ``blocks``.  Mutates the cache's tag/dirty stores and policy
    state tables exactly like the generic kernel and returns the per-access
    hit mask.
    """
    name = cache._vec_policy.name
    if name == "fifo":
        return _run_fifo(cache, blocks, sets, is_write)
    if name == "plru":
        return _run_plru(cache, blocks, sets, is_write)
    if name == "random":
        return _run_random(cache, blocks, sets, is_write)
    # Unknown policy (future-proofing): the generic kernel handles anything
    # that implements the VecReplacementState protocol.
    return cache._run_policy_kernel(blocks, is_write)


def _finish_stats(cache, n, loads, stores, load_misses, store_misses,
                  evictions, writebacks):
    cache._clock += n
    stats = cache.stats
    stats.loads += loads
    stats.stores += stores
    stats.load_misses += load_misses
    stats.store_misses += store_misses
    stats.evictions += evictions
    stats.writebacks += writebacks


# --------------------------------------------------------------------- #
# FIFO
# --------------------------------------------------------------------- #

def _run_fifo(cache, blocks, sets, is_write):
    n = blocks.shape[0]
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    order, starts, stops, set_ids = group_by_set(sets)
    gbl = blocks[order].tolist()
    pos_l = order.tolist()
    has_stores = bool(is_write.any())
    gwl = is_write[order].tolist() if has_stores else None
    base = cache._clock + 1
    tags = cache._way_tags
    dirty = cache._way_dirty
    hits_l = [False] * n
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    try:
        stamp_l = policy.stamp_lists
        if cache._ways == 2:
            # FIFO victim order over two valid ways strictly alternates, so
            # the min-stamp comparison reduces to a next-victim flag seeded
            # from the warm stamps (ties to way 0, like the scalar scan).
            # Fill timestamps are reconstructed once per set at write-back
            # from the grouped index of each way's last fill — the hot loop
            # never touches the clock at all.
            tags0, tags1 = tags
            dirty0, dirty1 = dirty
            stamp0, stamp1 = stamp_l
            for k in range(len(starts)):
                lo, hi, s = starts[k], stops[k], set_ids[k]
                t0 = tags0[s]
                t1 = tags1[s]
                d0 = dirty0[s]
                d1 = dirty1[s]
                nxt = 1 if stamp1[s] < stamp0[s] else 0
                i0 = -1
                i1 = -1
                if gwl is None:
                    for i in range(lo, hi):
                        v = gbl[i]
                        if v == t0 or v == t1:
                            hits_l[i] = True
                            continue
                        load_misses += 1
                        if t0 < 0:
                            t0 = v
                            d0 = False
                            i0 = i
                            nxt = 1
                        elif t1 < 0:
                            t1 = v
                            d1 = False
                            i1 = i
                            nxt = 0
                        elif nxt:
                            evictions += 1
                            if d1:
                                writebacks += 1
                                d1 = False
                            t1 = v
                            i1 = i
                            nxt = 0
                        else:
                            evictions += 1
                            if d0:
                                writebacks += 1
                                d0 = False
                            t0 = v
                            i0 = i
                            nxt = 1
                else:
                    for i in range(lo, hi):
                        v = gbl[i]
                        if v == t0:
                            hits_l[i] = True
                            if gwl[i] and write_back:
                                d0 = True
                            continue
                        if v == t1:
                            hits_l[i] = True
                            if gwl[i] and write_back:
                                d1 = True
                            continue
                        w = gwl[i]
                        if w:
                            store_misses += 1
                            if not write_back:
                                continue
                        else:
                            load_misses += 1
                        if t0 < 0:
                            t0 = v
                            d0 = w
                            i0 = i
                            nxt = 1
                        elif t1 < 0:
                            t1 = v
                            d1 = w
                            i1 = i
                            nxt = 0
                        elif nxt:
                            evictions += 1
                            if d1:
                                writebacks += 1
                            t1 = v
                            d1 = w
                            i1 = i
                            nxt = 0
                        else:
                            evictions += 1
                            if d0:
                                writebacks += 1
                            t0 = v
                            d0 = w
                            i0 = i
                            nxt = 1
                tags0[s] = t0
                tags1[s] = t1
                dirty0[s] = d0
                dirty1[s] = d1
                if i0 >= 0:
                    stamp0[s] = base + pos_l[i0]
                if i1 >= 0:
                    stamp1[s] = base + pos_l[i1]
        else:
            ways = cache._ways
            way_range = range(ways)
            for k in range(len(starts)):
                lo, hi, s = starts[k], stops[k], set_ids[k]
                tag_s = [tags[w][s] for w in way_range]
                dirty_s = [dirty[w][s] for w in way_range]
                resident = {}
                heap = []
                invalid = []
                for w in range(ways - 1, -1, -1):
                    tg = tag_s[w]
                    if tg < 0:
                        invalid.append(w)
                    else:
                        resident[tg] = w
                        heap.append((stamp_l[w][s], w))
                heapify(heap)
                for i in range(lo, hi):
                    v = gbl[i]
                    hw = resident.get(v, -1)
                    w = gwl[i] if gwl is not None else False
                    if hw >= 0:
                        hits_l[i] = True
                        if w and write_back:
                            dirty_s[hw] = True
                        continue
                    if w:
                        store_misses += 1
                        if not write_back:
                            continue
                    else:
                        load_misses += 1
                    if invalid:
                        way = invalid.pop()
                    else:
                        _, way = heappop(heap)
                        evictions += 1
                        if dirty_s[way]:
                            writebacks += 1
                        del resident[tag_s[way]]
                    stamp = base + pos_l[i]
                    tag_s[way] = v
                    dirty_s[way] = w
                    resident[v] = way
                    stamp_l[way][s] = stamp
                    heappush(heap, (stamp, way))
                for w in way_range:
                    tags[w][s] = tag_s[w]
                    dirty[w][s] = dirty_s[w]
    finally:
        policy.kernel_end()

    stores = int(is_write.sum()) if has_stores else 0
    _finish_stats(cache, n, n - stores, stores, load_misses, store_misses,
                  evictions, writebacks)
    hits = np.empty(n, dtype=bool)
    hits[order] = hits_l
    return hits


# --------------------------------------------------------------------- #
# tree-PLRU
# --------------------------------------------------------------------- #

def _run_plru(cache, blocks, sets, is_write):
    n = blocks.shape[0]
    policy = cache._vec_policy
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    order, starts, stops, set_ids = group_by_set(sets)
    gbl = blocks[order].tolist()
    pos_l = order.tolist()
    has_stores = bool(is_write.any())
    gwl = is_write[order].tolist() if has_stores else None
    base = cache._clock + 1
    tags = cache._way_tags
    dirty = cache._way_dirty
    hits_l = [False] * n
    load_misses = store_misses = evictions = writebacks = 0

    policy.kernel_begin()
    try:
        bits_l = policy.bit_lists
        stamp_l = policy.stamp_lists
        if cache._ways == 2:
            # One direction bit per set: True sends the victim walk to way 1,
            # i.e. two-way tree-PLRU is exact LRU.  Touch timestamps (the
            # skewed-placement fallback, never consulted by this non-skewed
            # cache) are reconstructed once per set at write-back from each
            # way's last touched grouped index.
            tags0, tags1 = tags
            dirty0, dirty1 = dirty
            stamp0, stamp1 = stamp_l
            for k in range(len(starts)):
                lo, hi, s = starts[k], stops[k], set_ids[k]
                t0 = tags0[s]
                t1 = tags1[s]
                d0 = dirty0[s]
                d1 = dirty1[s]
                i0 = -1
                i1 = -1
                b = bits_l[s][0]
                if gwl is None:
                    for i in range(lo, hi):
                        v = gbl[i]
                        if v == t0:
                            hits_l[i] = True
                            b = True
                            i0 = i
                            continue
                        if v == t1:
                            hits_l[i] = True
                            b = False
                            i1 = i
                            continue
                        load_misses += 1
                        if t0 < 0:
                            t0 = v
                            d0 = False
                            b = True
                            i0 = i
                        elif t1 < 0:
                            t1 = v
                            d1 = False
                            b = False
                            i1 = i
                        elif b:
                            evictions += 1
                            if d1:
                                writebacks += 1
                                d1 = False
                            t1 = v
                            b = False
                            i1 = i
                        else:
                            evictions += 1
                            if d0:
                                writebacks += 1
                                d0 = False
                            t0 = v
                            b = True
                            i0 = i
                else:
                    for i in range(lo, hi):
                        v = gbl[i]
                        if v == t0:
                            hits_l[i] = True
                            b = True
                            i0 = i
                            if gwl[i] and write_back:
                                d0 = True
                            continue
                        if v == t1:
                            hits_l[i] = True
                            b = False
                            i1 = i
                            if gwl[i] and write_back:
                                d1 = True
                            continue
                        w = gwl[i]
                        if w:
                            store_misses += 1
                            if not write_back:
                                continue
                        else:
                            load_misses += 1
                        if t0 < 0:
                            t0 = v
                            d0 = w
                            b = True
                            i0 = i
                        elif t1 < 0:
                            t1 = v
                            d1 = w
                            b = False
                            i1 = i
                        elif b:
                            evictions += 1
                            if d1:
                                writebacks += 1
                            t1 = v
                            d1 = w
                            b = False
                            i1 = i
                        else:
                            evictions += 1
                            if d0:
                                writebacks += 1
                            t0 = v
                            d0 = w
                            b = True
                            i0 = i
                tags0[s] = t0
                tags1[s] = t1
                dirty0[s] = d0
                dirty1[s] = d1
                if i0 >= 0:
                    stamp0[s] = base + pos_l[i0]
                if i1 >= 0:
                    stamp1[s] = base + pos_l[i1]
                bits_l[s][0] = b
        else:
            ways = cache._ways
            way_range = range(ways)
            touch = plru_touch
            pick = plru_victim
            for k in range(len(starts)):
                lo, hi, s = starts[k], stops[k], set_ids[k]
                tag_s = [tags[w][s] for w in way_range]
                dirty_s = [dirty[w][s] for w in way_range]
                touch_i = [-1] * ways
                bits_s = bits_l[s]
                resident = {}
                invalid = []
                for w in range(ways - 1, -1, -1):
                    if tag_s[w] < 0:
                        invalid.append(w)
                    else:
                        resident[tag_s[w]] = w
                for i in range(lo, hi):
                    v = gbl[i]
                    hw = resident.get(v, -1)
                    w = gwl[i] if gwl is not None else False
                    if hw >= 0:
                        hits_l[i] = True
                        touch_i[hw] = i
                        touch(bits_s, hw, ways)
                        if w and write_back:
                            dirty_s[hw] = True
                        continue
                    if w:
                        store_misses += 1
                        if not write_back:
                            continue
                    else:
                        load_misses += 1
                    if invalid:
                        way = invalid.pop()
                    else:
                        way = pick(bits_s, ways)
                        evictions += 1
                        if dirty_s[way]:
                            writebacks += 1
                        del resident[tag_s[way]]
                    tag_s[way] = v
                    dirty_s[way] = w
                    resident[v] = way
                    touch_i[way] = i
                    touch(bits_s, way, ways)
                for w in way_range:
                    tags[w][s] = tag_s[w]
                    dirty[w][s] = dirty_s[w]
                    ti = touch_i[w]
                    if ti >= 0:
                        stamp_l[w][s] = base + pos_l[ti]
    finally:
        policy.kernel_end()

    stores = int(is_write.sum()) if has_stores else 0
    _finish_stats(cache, n, n - stores, stores, load_misses, store_misses,
                  evictions, writebacks)
    hits = np.empty(n, dtype=bool)
    hits[order] = hits_l
    return hits


# --------------------------------------------------------------------- #
# counter-based random
# --------------------------------------------------------------------- #

def _run_random(cache, blocks, sets, is_write):
    n = blocks.shape[0]
    policy = cache._vec_policy
    ways = cache._ways
    write_back = cache._write_policy == WritePolicy.WRITE_BACK_ALLOCATE
    has_stores = bool(is_write.any())
    sets_l = sets.tolist()
    bl = blocks.tolist()
    wl = is_write.tolist() if has_stores else None
    # A batch consumes at most one draw per access, so n picks cover it; the
    # counter advances by exactly the number of draws actually consumed.
    picks = splitmix64_array(policy.seed, policy.counter, n) % np.uint64(ways)
    tags = cache._way_tags
    dirty = cache._way_dirty
    hits_l = []
    ha = hits_l.append
    load_misses = store_misses = evictions = writebacks = 0
    pe = 0

    if ways == 2:
        picks_l = picks.astype(bool).tolist()
        t0l, t1l = tags
        d0l, d1l = dirty
        if wl is None:
            for v, s in zip(bl, sets_l):
                if t0l[s] == v or t1l[s] == v:
                    ha(True)
                    continue
                ha(False)
                load_misses += 1
                if t0l[s] < 0:
                    t0l[s] = v
                elif t1l[s] < 0:
                    t1l[s] = v
                elif picks_l[pe]:
                    pe += 1
                    evictions += 1
                    if d1l[s]:
                        writebacks += 1
                        d1l[s] = False
                    t1l[s] = v
                else:
                    pe += 1
                    evictions += 1
                    if d0l[s]:
                        writebacks += 1
                        d0l[s] = False
                    t0l[s] = v
        else:
            for i, v in enumerate(bl):
                s = sets_l[i]
                w = wl[i]
                if t0l[s] == v:
                    ha(True)
                    if w and write_back:
                        d0l[s] = True
                    continue
                if t1l[s] == v:
                    ha(True)
                    if w and write_back:
                        d1l[s] = True
                    continue
                ha(False)
                if w:
                    store_misses += 1
                    if not write_back:
                        continue
                else:
                    load_misses += 1
                if t0l[s] < 0:
                    t0l[s] = v
                    d0l[s] = w
                elif t1l[s] < 0:
                    t1l[s] = v
                    d1l[s] = w
                elif picks_l[pe]:
                    pe += 1
                    evictions += 1
                    if d1l[s]:
                        writebacks += 1
                    t1l[s] = v
                    d1l[s] = w
                else:
                    pe += 1
                    evictions += 1
                    if d0l[s]:
                        writebacks += 1
                    t0l[s] = v
                    d0l[s] = w
    else:
        picks_l = picks.tolist()
        # Resident maps and invalid-way stacks are seeded lazily on a set's
        # first access: a batch touching few sets of a large cache must not
        # pay an O(num_sets * ways) sweep up front.
        residents: dict = {}
        invalids: dict = {}
        for i, v in enumerate(bl):
            s = sets_l[i]
            d = residents.get(s)
            if d is None:
                d = {}
                inv = []
                for w in range(ways - 1, -1, -1):
                    tg = tags[w][s]
                    if tg < 0:
                        inv.append(w)
                    else:
                        d[tg] = w
                residents[s] = d
                invalids[s] = inv
            hw = d.get(v, -1)
            w = wl[i] if wl is not None else False
            if hw >= 0:
                ha(True)
                if w and write_back:
                    dirty[hw][s] = True
                continue
            ha(False)
            if w:
                store_misses += 1
                if not write_back:
                    continue
            else:
                load_misses += 1
            inv = invalids[s]
            if inv:
                way = inv.pop()
            else:
                way = picks_l[pe]
                pe += 1
                evictions += 1
                if dirty[way][s]:
                    writebacks += 1
                del d[tags[way][s]]
            tags[way][s] = v
            dirty[way][s] = w
            d[v] = way

    policy.counter += pe
    stores = int(is_write.sum()) if has_stores else 0
    _finish_stats(cache, n, n - stores, stores, load_misses, store_misses,
                  evictions, writebacks)
    return np.array(hits_l, dtype=bool)
