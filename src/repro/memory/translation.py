"""Address translation front-end combining a page table and a TLB.

The processor model and the virtual-real hierarchy both need a single object
that answers "what is the physical address of this virtual address, and did
the translation hit in the TLB?".  :class:`AddressTranslator` provides that,
along with the latency bookkeeping needed to study Section 3.1 option 1
(translate *before* indexing, paying the TLB latency on the cache-access
critical path).
"""

from __future__ import annotations

from dataclasses import dataclass

from .paging import PageTable, TLB

__all__ = ["TranslationResult", "AddressTranslator"]


@dataclass(frozen=True)
class TranslationResult:
    """Result of translating one virtual address."""

    virtual_address: int
    physical_address: int
    tlb_hit: bool
    latency: int


class AddressTranslator:
    """Page-table-backed translator with an optional TLB in front.

    Parameters
    ----------
    page_table:
        Backing :class:`~repro.memory.paging.PageTable`.
    tlb:
        Optional TLB; when omitted every translation walks the page table.
    tlb_latency, walk_latency:
        Cycle costs charged for a TLB hit and for a page-table walk
        respectively; used by the processor model when translation sits on
        the critical path.
    """

    def __init__(self, page_table: PageTable, tlb: TLB = None,
                 tlb_latency: int = 1, walk_latency: int = 20) -> None:
        if tlb is not None and tlb._page_size != page_table.page_size:
            raise ValueError("TLB and page table must agree on page size")
        if tlb_latency < 0 or walk_latency < 0:
            raise ValueError("latencies must be non-negative")
        self._page_table = page_table
        self._tlb = tlb
        self._tlb_latency = tlb_latency
        self._walk_latency = walk_latency

    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return self._page_table.page_size

    def translate(self, virtual_address: int) -> int:
        """Translate and return only the physical address (no statistics)."""
        return self.lookup(virtual_address).physical_address

    def lookup(self, virtual_address: int) -> TranslationResult:
        """Translate, updating TLB state and returning full detail."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        offset = virtual_address & (self.page_size - 1)
        if self._tlb is not None:
            frame = self._tlb.lookup(virtual_address)
            if frame is not None:
                physical = frame * self.page_size + offset
                return TranslationResult(virtual_address, physical, True,
                                         self._tlb_latency)
        physical = self._page_table.translate(virtual_address)
        if self._tlb is not None:
            self._tlb.insert(virtual_address, physical // self.page_size)
        return TranslationResult(virtual_address, physical, False,
                                 self._tlb_latency + self._walk_latency)
