"""Cache line (block) state.

A cache stores fixed-size blocks of memory.  Each frame in the cache either
holds a valid block — identified here by its *block number*, i.e. the memory
address divided by the block size — or is empty.  The frame also carries the
bookkeeping needed by replacement policies (insertion and last-use times) and
by write-back caches (the dirty bit).

Keeping the whole block number rather than a (tag, set) split makes the model
independent of the index function: with pseudo-random placement the set index
cannot be recovered from the tag alone, so the simulator simply stores the
full identity of the resident block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CacheBlock"]


@dataclass
class CacheBlock:
    """One cache frame.

    Attributes
    ----------
    block_number:
        Memory block currently resident, or ``None`` when the frame is empty.
    dirty:
        True when the frame holds data newer than memory (write-back caches).
    inserted_at:
        Access sequence number at which the current block was filled.
    last_used_at:
        Access sequence number of the most recent hit or fill.
    rehashed:
        Used by the column-associative cache: True when the block lives at
        its secondary (polynomial) location rather than its primary one.
    """

    block_number: Optional[int] = None
    dirty: bool = False
    inserted_at: int = 0
    last_used_at: int = 0
    rehashed: bool = False

    @property
    def valid(self) -> bool:
        """True when the frame holds a block."""
        return self.block_number is not None

    def fill(self, block_number: int, now: int, dirty: bool = False,
             rehashed: bool = False) -> None:
        """Install ``block_number`` into this frame."""
        if block_number < 0:
            raise ValueError("block_number must be non-negative")
        self.block_number = block_number
        self.dirty = dirty
        self.inserted_at = now
        self.last_used_at = now
        self.rehashed = rehashed

    def touch(self, now: int) -> None:
        """Record a use of the resident block (for LRU bookkeeping)."""
        if not self.valid:
            raise ValueError("cannot touch an invalid cache frame")
        self.last_used_at = now

    def invalidate(self) -> None:
        """Empty the frame."""
        self.block_number = None
        self.dirty = False
        self.rehashed = False
